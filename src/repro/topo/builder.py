"""Declarative scenario construction.

A :class:`ScenarioBuilder` collects the description of an experiment —
medium type, stations, connectivity, traffic streams, noise, scheduled
events — and :meth:`~ScenarioBuilder.build` materializes it into a
:class:`Scenario` ready to :meth:`~Scenario.run`.

Example (the paper's Figure 2)::

    builder = ScenarioBuilder(seed=1, protocol="maca")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", rate_pps=64)
    builder.udp("P2", "B", rate_pps=64)
    scenario = builder.build().run(500)
    scenario.throughput("P1-B", warmup=50)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import MACA_CONFIG, MACAW_CONFIG
from repro.core.macaw import MacawMac
from repro.mac.base import BaseMac
from repro.mac.csma import CsmaConfig, CsmaMac
from repro.mac.timing import MacTiming
from repro.net.sink import FlowRecorder
from repro.net.tcp import TcpStream
from repro.net.udp import UdpStream
from repro.phy.graph_medium import GraphMedium
from repro.phy.grid_medium import GridMedium
from repro.phy.medium import Medium
from repro.phy.noise import PacketErrorModel
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.topo.station import Station
from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    check_scenario,
)
from repro.obs.runtime import note_metrics, resolve_metrics
from repro.verify.runtime import (
    digests_enabled,
    note_digest,
    note_report,
    sanitize_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.probes import ScenarioMetrics

#: Default warm-up excluded from throughput measurements (§3: "a warmup
#: period of 50 seconds").
DEFAULT_WARMUP_S = 50.0


class Scenario:
    """A materialized experiment: simulator, medium, stations and streams."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        recorder: FlowRecorder,
        sanitize: bool = False,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.recorder = recorder
        self.stations: Dict[str, Station] = {}
        self.streams: Dict[str, Any] = {}
        self.duration: Optional[float] = None
        #: When True, every :meth:`run` replays the trace through the
        #: conformance sanitizer and raises on protocol violations.
        self.sanitize = sanitize
        #: When True (set by the builder while a
        #: :func:`repro.verify.runtime.capturing_digests` block is active),
        #: every :meth:`run` reports the trace digest to the capture sink.
        self.report_digest = False
        #: Report from the most recent :meth:`verify` / sanitized run.
        self.conformance: Optional[ConformanceReport] = None
        #: Live metrics handle (:class:`repro.obs.probes.ScenarioMetrics`);
        #: None unless the builder instrumented this scenario.
        self.metrics: Optional["ScenarioMetrics"] = None

    def station(self, name: str) -> Station:
        return self.stations[name]

    def stream(self, stream_id: str) -> Any:
        return self.streams[stream_id]

    def run(self, duration: float) -> "Scenario":
        """Advance the simulation to ``duration`` seconds and remember it.

        In sanitized mode the recorded trace is then replayed through the
        protocol conformance checker; any violation raises
        :class:`~repro.verify.conformance.ConformanceError`.
        """
        self.sim.run(until=duration)
        self.duration = duration
        if self.report_digest:
            note_digest(self.sim.trace.digest())
        if self.metrics is not None:
            note_metrics(self.metrics.dump())
        if self.sanitize:
            report = self.verify()
            note_report(sum(report.examined.values()), len(report.violations))
            if not report.ok:
                raise ConformanceError(report)
        return self

    def verify(self) -> ConformanceReport:
        """Replay the recorded trace through the conformance sanitizer.

        Requires tracing to have been enabled (``trace=True`` or
        ``sanitize=True`` on the builder); with tracing off the report is
        trivially empty.
        """
        self.conformance = check_scenario(self)
        return self.conformance

    # ------------------------------------------------------------- results
    def throughput(
        self,
        stream_id: str,
        warmup: float = DEFAULT_WARMUP_S,
        end: Optional[float] = None,
    ) -> float:
        """Delivered packets per second for one stream, past warm-up."""
        if end is None:
            if self.duration is None:
                raise RuntimeError("run() the scenario before reading throughput")
            end = self.duration
        return self.recorder.throughput_pps(stream_id, warmup, end)

    def throughputs(
        self, warmup: float = DEFAULT_WARMUP_S, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Throughput of every declared stream, in declaration order."""
        return {
            stream_id: self.throughput(stream_id, warmup, end)
            for stream_id in self.streams
        }


@dataclass
class _StationSpec:
    name: str
    kind: str
    position: Tuple[float, float, float]
    protocol: Optional[str]
    config: Optional[Any]


class ScenarioBuilder:
    """Collects an experiment description; ``build()`` wires it together.

    Parameters
    ----------
    seed:
        Master random seed (one integer reproduces the whole run).
    medium:
        ``"graph"`` (explicit connectivity, the figures' textual topology)
        or ``"grid"`` (the paper's cube-grid signal model).
    protocol:
        Default MAC for stations: ``"macaw"``, ``"maca"`` or ``"csma"``.
    config:
        Default protocol configuration (a :class:`ProtocolConfig` for
        macaw/maca, a :class:`CsmaConfig` for csma).
    sanitize:
        Run the protocol conformance sanitizer after every
        :meth:`Scenario.run` (implies tracing).  ``None`` (default)
        defers to :func:`repro.verify.runtime.sanitize_enabled` — the
        programmatic override or the ``REPRO_SANITIZE`` environment
        variable — so whole experiment suites can opt in externally.
    metrics:
        Opt-in live instrumentation (:mod:`repro.obs`).  ``True`` uses
        default cadence, a number is a sampling interval in seconds, a
        :class:`~repro.obs.runtime.MetricsConfig` gives full control,
        ``False`` forces metrics off.  ``None`` (default) defers to
        :func:`repro.obs.runtime.ambient_config` — the ``collecting``
        context manager (used by the CLI and the parallel runner) or the
        ``REPRO_METRICS`` environment variable.  Instrumentation is
        passive: same-seed runs produce identical trace digests and
        ``events_fired`` with metrics on or off.
    """

    def __init__(
        self,
        seed: int = 0,
        medium: str = "graph",
        protocol: str = "macaw",
        config: Optional[Any] = None,
        bitrate_bps: float = 256_000.0,
        trace: bool = False,
        grid_kwargs: Optional[Dict[str, Any]] = None,
        queue_capacity: Optional[int] = 64,
        timing: Optional[MacTiming] = None,
        sanitize: Optional[bool] = None,
        metrics: Any = None,
    ) -> None:
        if medium not in ("graph", "grid"):
            raise ValueError(f"medium must be 'graph' or 'grid', got {medium!r}")
        self.seed = seed
        self.medium_kind = medium
        self.protocol = protocol
        self.config = config
        self.bitrate_bps = bitrate_bps
        self.trace = trace
        self.sanitize = sanitize
        self.metrics = metrics
        self.grid_kwargs = grid_kwargs or {}
        self.queue_capacity = queue_capacity
        self.timing = timing
        self._stations: List[_StationSpec] = []
        self._links: List[Tuple[str, str, bool]] = []
        self._streams: List[Tuple[str, Dict[str, Any]]] = []
        self._noise: List[PacketErrorModel] = []
        self._events: List[Tuple[float, Callable[[Scenario], None]]] = []

    # ------------------------------------------------------------- stations
    def add_station(
        self,
        name: str,
        kind: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        protocol: Optional[str] = None,
        config: Optional[Any] = None,
    ) -> "ScenarioBuilder":
        if any(spec.name == name for spec in self._stations):
            raise ValueError(f"duplicate station {name!r}")
        self._stations.append(_StationSpec(name, kind, position, protocol, config))
        return self

    def add_pad(self, name: str, position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                **kwargs: Any) -> "ScenarioBuilder":
        return self.add_station(name, "pad", position, **kwargs)

    def add_base(self, name: str, position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                 **kwargs: Any) -> "ScenarioBuilder":
        return self.add_station(name, "base", position, **kwargs)

    # ---------------------------------------------------------------- links
    def link(self, a: str, b: str, symmetric: bool = True) -> "ScenarioBuilder":
        """Declare that ``a`` and ``b`` are in range (graph medium only)."""
        self._links.append((a, b, symmetric))
        return self

    def clique(self, *names: str) -> "ScenarioBuilder":
        """Declare a set of mutually in-range stations (one cell)."""
        members = list(names)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                self.link(a, b)
        return self

    # -------------------------------------------------------------- traffic
    def udp(
        self,
        src: str,
        dst: str,
        rate_pps: float,
        stream_id: Optional[str] = None,
        **kwargs: Any,
    ) -> str:
        """Declare a UDP stream; returns its id (default ``"src-dst"``)."""
        stream_id = stream_id or f"{src}-{dst}"
        self._streams.append(("udp", dict(src=src, dst=dst, rate_pps=rate_pps,
                                          stream_id=stream_id, **kwargs)))
        return stream_id

    def tcp(
        self,
        src: str,
        dst: str,
        rate_pps: float,
        stream_id: Optional[str] = None,
        **kwargs: Any,
    ) -> str:
        """Declare a TCP stream; returns its id (default ``"src-dst"``)."""
        stream_id = stream_id or f"{src}-{dst}"
        self._streams.append(("tcp", dict(src=src, dst=dst, rate_pps=rate_pps,
                                          stream_id=stream_id, **kwargs)))
        return stream_id

    # ------------------------------------------------------- noise & events
    def noise(self, model: PacketErrorModel) -> "ScenarioBuilder":
        """Attach a packet-error model to the medium."""
        self._noise.append(model)
        return self

    def at(self, time: float, action: Callable[[Scenario], None]) -> "ScenarioBuilder":
        """Schedule ``action(scenario)`` at simulated ``time`` (mobility,
        power changes, reconfiguration)."""
        self._events.append((time, action))
        return self

    def power_off_at(self, name: str, time: float) -> "ScenarioBuilder":
        """Schedule a station power-off (Figure 9)."""
        return self.at(time, lambda scenario: scenario.station(name).power_off())

    # ----------------------------------------------------------------- build
    def _make_mac(
        self, sim: Simulator, medium: Medium, spec: _StationSpec, timing: MacTiming
    ) -> BaseMac:
        protocol = spec.protocol or self.protocol
        config = spec.config if spec.config is not None else self.config
        if protocol == "macaw":
            return MacawMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else MACAW_CONFIG,
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "maca":
            # Imported here: repro.mac deliberately does not import maca at
            # package level (see repro/mac/__init__.py).
            from repro.mac.maca import MacaMac

            return MacaMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else MACA_CONFIG,
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "csma":
            return CsmaMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else CsmaConfig(),
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "polling":
            from repro.mac.polling import (
                PollingBaseMac,
                PollingConfig,
                PollingPadMac,
            )

            cls = PollingBaseMac if spec.kind == "base" else PollingPadMac
            return cls(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else PollingConfig(),
                timing=timing, queue_capacity=self.queue_capacity,
            )
        raise ValueError(f"unknown protocol {protocol!r}")

    def build(self) -> Scenario:
        """Materialize the scenario (idempotent: each call builds afresh)."""
        sanitize = sanitize_enabled(self.sanitize)
        report_digest = digests_enabled()
        sim = Simulator(
            seed=self.seed,
            trace=Trace(enabled=self.trace or sanitize or report_digest),
        )
        if self.medium_kind == "graph":
            medium: Medium = GraphMedium(sim, bitrate_bps=self.bitrate_bps)
        else:
            medium = GridMedium(sim, bitrate_bps=self.bitrate_bps, **self.grid_kwargs)
        recorder = FlowRecorder()
        scenario = Scenario(sim, medium, recorder, sanitize=sanitize)
        scenario.report_digest = report_digest
        timing = self.timing if self.timing is not None else MacTiming(
            bitrate_bps=self.bitrate_bps
        )

        for spec in self._stations:
            mac = self._make_mac(sim, medium, spec, timing)
            scenario.stations[spec.name] = Station(spec.name, spec.kind, mac, recorder)

        if self._links and self.medium_kind != "graph":
            raise ValueError("explicit links require the graph medium")
        if isinstance(medium, GraphMedium):
            for a, b, symmetric in self._links:
                medium.set_link(
                    scenario.stations[a].mac, scenario.stations[b].mac, True, symmetric
                )

        for model in self._noise:
            medium.add_noise_model(model)

        # Polling cells: each polling base learns the pads in its range.
        from repro.mac.polling import PollingBaseMac, PollingPadMac

        for station in scenario.stations.values():
            mac = station.mac
            if not isinstance(mac, PollingBaseMac):
                continue
            for other in scenario.stations.values():
                if isinstance(other.mac, PollingPadMac) and medium.in_range(
                    mac, other.mac
                ):
                    mac.register_pad(other.name)

        for kind, params in self._streams:
            src = scenario.stations[params["src"]]
            dst = scenario.stations[params["dst"]]
            stream_id = params["stream_id"]
            extra = {
                k: v for k, v in params.items()
                if k not in ("src", "dst", "stream_id", "rate_pps")
            }
            if kind == "udp":
                stream: Any = UdpStream(
                    sim, src.mac, dst.mac, stream_id, params["rate_pps"], **extra
                )
            else:
                stream = TcpStream(
                    sim, src.dispatcher, dst.dispatcher, stream_id,
                    params["rate_pps"], recorder=recorder, **extra
                )
            scenario.streams[stream_id] = stream

        for time, action in self._events:
            sim.at(time, action, scenario)

        # Instrument last, once every station and stream exists.  The
        # sampler attaches as the kernel's passive observer and the probes
        # only read model state, so an instrumented run fires the same
        # events and produces the same trace digest as a bare one.
        metrics_config = resolve_metrics(self.metrics)
        if metrics_config is not None:
            from repro.obs.probes import instrument_scenario

            scenario.metrics = instrument_scenario(scenario, metrics_config)
        return scenario
