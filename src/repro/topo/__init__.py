"""Topology: stations, scenario construction, and the paper's figures.

* :mod:`repro.topo.station` — pads and base stations (§2.1 terminology).
* :mod:`repro.topo.builder` — declarative scenario construction: pick a
  medium, place stations, wire links or cells, attach streams, schedule
  mid-run events (power-off, mobility), then :meth:`build` and
  :meth:`~repro.topo.builder.Scenario.run`.
* :mod:`repro.topo.figures` — one constructor per paper figure (1–11),
  so every experiment names its configuration the way the paper does.
"""

from repro.topo.station import Station
from repro.topo.builder import Scenario, ScenarioBuilder

__all__ = ["Station", "Scenario", "ScenarioBuilder"]
