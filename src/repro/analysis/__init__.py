"""Analysis: fairness and utilization metrics, and table rendering.

The paper's evaluation criterion (§3): "the media access protocol should
deliver high network utilization and also provide fair access to the
media."  This package turns :class:`~repro.net.sink.FlowRecorder` logs into
the numbers the tables report and the fairness measures §3.5 discusses
(max spread between same-cell streams) plus Jain's index as the standard
summary statistic.
"""

from repro.analysis.metrics import (
    jain_fairness,
    max_spread,
    total_throughput,
    channel_utilization,
    throughput_timeseries,
    delay_percentiles,
)
from repro.analysis.tables import ComparisonTable, format_table

__all__ = [
    "jain_fairness",
    "max_spread",
    "total_throughput",
    "channel_utilization",
    "throughput_timeseries",
    "delay_percentiles",
    "ComparisonTable",
    "format_table",
]
