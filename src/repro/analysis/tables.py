"""Rendering experiment results in the paper's table format.

A :class:`ComparisonTable` holds per-stream rows with one column per
protocol variant (exactly how Tables 1–11 are laid out) plus optional
paper-reported reference values, and renders as aligned plain text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align columns; first column left-justified, the rest right."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        out = [cells[0].ljust(widths[0])]
        out += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(out)
    lines = [render(list(headers)), "  ".join("-" * w for w in widths)]
    lines += [render(list(row)) for row in rows]
    return "\n".join(lines)


@dataclass
class ComparisonTable:
    """One reproduced table: streams × variants, with paper references.

    ``measured[variant][stream]`` and ``paper[variant][stream]`` hold
    packets-per-second values; streams render in insertion order of
    ``stream_order``.
    """

    title: str
    stream_order: List[str] = field(default_factory=list)
    measured: Dict[str, Dict[str, float]] = field(default_factory=dict)
    paper: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add(self, variant: str, stream: str, value: float,
            paper_value: Optional[float] = None) -> None:
        if stream not in self.stream_order:
            self.stream_order.append(stream)
        self.measured.setdefault(variant, {})[stream] = value
        if paper_value is not None:
            self.paper.setdefault(variant, {})[stream] = paper_value

    def variants(self) -> List[str]:
        return list(self.measured)

    def totals(self) -> Dict[str, float]:
        """Aggregate throughput per variant."""
        return {v: sum(vals.values()) for v, vals in self.measured.items()}

    def value(self, variant: str, stream: str) -> float:
        return self.measured[variant][stream]

    def render(self, show_paper: bool = True) -> str:
        headers = ["stream"]
        for variant in self.measured:
            headers.append(variant)
            if show_paper and variant in self.paper:
                headers.append(f"{variant} (paper)")
        rows: List[List[str]] = []
        for stream in self.stream_order:
            row = [stream]
            for variant in self.measured:
                row.append(f"{self.measured[variant].get(stream, float('nan')):.2f}")
                if show_paper and variant in self.paper:
                    ref = self.paper[variant].get(stream)
                    row.append("-" if ref is None else f"{ref:.2f}")
            rows.append(row)
        total_row = ["TOTAL"]
        for variant in self.measured:
            total_row.append(f"{sum(self.measured[variant].values()):.2f}")
            if show_paper and variant in self.paper:
                total_row.append(f"{sum(self.paper[variant].values()):.2f}")
        rows.append(total_row)
        return f"{self.title}\n" + format_table(headers, rows)

    def __str__(self) -> str:
        return self.render()
