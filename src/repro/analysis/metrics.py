"""Throughput, fairness and utilization metrics."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.net.sink import FlowRecorder


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is perfectly fair.

    All-zero allocations are defined as perfectly fair (index 1.0) —
    nothing is being shared unequally.
    """
    values = list(values)
    if not values:
        raise ValueError("fairness of an empty allocation is undefined")
    if any(v < 0 for v in values):
        raise ValueError("throughputs must be non-negative")
    total = sum(values)
    if total == 0.0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def max_spread(values: Sequence[float]) -> float:
    """Largest pairwise difference — the fairness measure §3.5 quotes
    ("the maximum difference between throughput for any two streams")."""
    values = list(values)
    if not values:
        raise ValueError("spread of an empty allocation is undefined")
    return max(values) - min(values)


def total_throughput(values: Iterable[float]) -> float:
    """Aggregate throughput across streams."""
    return sum(values)


def channel_utilization(
    pps: float, packet_bytes: int = 512, bitrate_bps: float = 256_000.0
) -> float:
    """Fraction of channel capacity carried as data payload.

    §3.5 uses exactly this: "MACA achieves a data rate of roughly 217 kbps,
    which is 84% channel capacity."
    """
    if pps < 0:
        raise ValueError("throughput must be non-negative")
    if packet_bytes <= 0 or bitrate_bps <= 0:
        raise ValueError("packet size and bitrate must be positive")
    return (pps * packet_bytes * 8) / bitrate_bps


def throughput_timeseries(
    recorder: FlowRecorder,
    stream: str,
    start: float,
    end: float,
    bin_s: float = 10.0,
) -> List[Tuple[float, float]]:
    """(bin start, pps) series — used to watch dynamics like Figure 9's
    power-off or Figure 11's mid-run arrival.

    Bin edges are computed from an integer index (no float accumulation
    drift over long runs).  Every bin is ``[lo, hi)`` except the last,
    which is ``[lo, end]`` *inclusive* and normalized by its actual
    (possibly partial) width: ``Simulator.run(until)`` fires delivery
    events at exactly ``until``, so packets landing on the horizon belong
    to the final bin rather than silently vanishing.  A stream with no
    deliveries yields an all-zero series covering the window.
    """
    if bin_s <= 0:
        raise ValueError("bin width must be positive")
    if end <= start:
        raise ValueError("need end > start")
    flow = recorder.flow(stream)
    # ceil((end-start)/bin_s), with a tolerance so an exact multiple does
    # not grow a zero-width trailing bin from float round-off.
    n_bins = max(1, math.ceil((end - start) / bin_s - 1e-9))
    series: List[Tuple[float, float]] = []
    for i in range(n_bins):
        lo = start + i * bin_s
        hi = min(start + (i + 1) * bin_s, end)
        last = i == n_bins - 1
        count = flow.count_between(lo, hi, include_end=last)
        series.append((lo, count / (hi - lo)))
    return series


def delay_percentiles(
    recorder: FlowRecorder,
    stream: str,
    start: float,
    end: float,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[float, float]:
    """End-to-end delay percentiles (seconds) over [start, end).

    Media-access delay is the user-visible cost of backoff and deferral;
    the paper reports only throughput, but a downstream user of this
    library will want latency too.  Raises ValueError when the window
    holds no delay samples.
    """
    import numpy as np

    delays = recorder.flow(stream).delays_between(start, end)
    if not delays:
        raise ValueError(f"no delay samples for {stream!r} in [{start}, {end})")
    values = np.percentile(np.asarray(delays), list(percentiles))
    return {p: float(v) for p, v in zip(percentiles, values)}


def per_cell_fairness(
    throughputs: Dict[str, float], cells: Dict[str, List[str]]
) -> Dict[str, float]:
    """Max spread within each cell, given cell → [stream ids]."""
    out: Dict[str, float] = {}
    for cell, streams in cells.items():
        values = [throughputs[s] for s in streams if s in throughputs]
        if values:
            out[cell] = max_spread(values)
    return out
