"""Protocol and run configuration.

Two frozen dataclasses live here:

* :class:`ProtocolConfig` — the MAC design axes the paper explores, so
  each table's two columns differ by exactly one flag:

  =====================  =========================================  =========
  Flag                   Paper section                              Table
  =====================  =========================================  =========
  ``copy_backoff``       backoff copying                            Table 1
  ``backoff``            BEB vs MILD                                Table 2
  ``multi_queue``        multiple stream model                      Table 3
  ``use_ack``            link-layer ACK                             Table 4
  ``use_ds``             data-sending packet                        Table 5
  ``use_rrts``           request-for-RTS                            Table 6
  ``per_destination``    per-destination backoff (App. B.2)         Table 8
  =====================  =========================================  =========

* :class:`RunProfile` — every *run-level* knob that used to sprawl
  across ``ScenarioBuilder.__init__`` keyword arguments (tracing,
  sanitizing, metrics, timing, queue capacity, bitrate, grid parameters,
  fault schedule).  One profile object flows unchanged through
  ``ScenarioBuilder``, ``Experiment.run``/``run_seeds`` and
  ``runner.run_cells``, and :meth:`RunProfile.digest` is what the result
  cache folds into its keys instead of ad-hoc config tuples.

The :func:`active_profile` context manager provides the ambient-profile
hook (mirroring ``verify.runtime.sanitized`` and ``obs.runtime
.collecting``): experiments build their scenarios deep inside driver
code, so the profile cannot always be threaded through as a parameter —
builders constructed without an explicit ``profile=`` pick up the
innermost active one.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Iterator, Mapping, Optional, Set, Tuple

from repro.obs.runtime import MetricsConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fault.schedule import FaultSchedule
    from repro.mac.timing import MacTiming


@dataclass(frozen=True)
class ProtocolConfig:
    """Feature flags and constants for the configurable exchange MAC."""

    #: Link-layer ACK after DATA (§3.3.1).
    use_ack: bool = False
    #: §4 extension: acknowledgement style when ``use_ack`` is on.
    #: "immediate" — an ACK frame after every DATA (the paper's MACAW);
    #: "piggyback" — while more packets are queued for the stream, skip the
    #: ACK frame and read the acknowledgement off the *next* exchange's CTS
    #: (the last packet of a burst still gets an immediate ACK).
    ack_variant: str = "immediate"
    #: §4 extension: when ``use_ack`` is off, have a receiver whose CTS drew
    #: no DATA send a NACK so the sender retransmits at media timescales
    #: without per-packet ACK overhead.
    use_nack: bool = False
    #: Data-sending announcement between CTS and DATA (§3.3.2).
    use_ds: bool = False
    #: Receiver-initiated contention (§3.3.3).
    use_rrts: bool = False
    #: Backoff adjustment: "beb" or "mild" (§3.1).
    backoff: str = "beb"
    #: Copy overheard backoff values (§3.1).
    copy_backoff: bool = False
    #: Separate congestion estimates per stream end (§3.4, App. B.2).
    per_destination: bool = False
    #: Per-stream queues with earliest-retry-slot selection (§3.2);
    #: False = one FIFO per station.
    multi_queue: bool = False
    #: Appendix-B-literal overheard-RTS defer (full exchange) instead of the
    #: §3.3.2 semantics (until the CTS slot passes).  See DESIGN.md.
    rts_defer_full_exchange: bool = False
    #: §3.3.2's alternative to the DS packet: sense the carrier before
    #: transmitting an RTS and hold until "one slot time after it detects
    #: no carrier" (essentially CSMA/CA).
    carrier_sense: bool = False
    #: When a defer interrupts a pending contention countdown, draw a fresh
    #: delay at the defer's end (False — the literal Appendix-B WFContend
    #: rule, and the default) or resume the interrupted countdown like
    #: 802.11 DCF (True).  Resuming synchronizes backed-off stations to
    #: contention periods so strongly that the paper's capture and
    #: starvation dynamics (Tables 1, 6, 7) cannot form; the redraw rule
    #: reproduces them.
    defer_resume: bool = False
    #: Fraction of a slot of uniform random phase added to every contention
    #: delay.  Stations have no shared slot clock: two draws landing within
    #: one slot of each other partially overlap and collide, which is what
    #: makes low-backoff contention wars expensive (and BEB's reset-to-
    #: minimum costly, §3.1).  Set to 0 for perfectly slot-synchronized
    #: stations (an idealization).
    contention_jitter: float = 1.0

    #: Contention bounds, in slots (§3: BO_min = 2, BO_max = 64).
    bo_min: float = 2.0
    bo_max: float = 64.0
    #: How long (in slots, from the end of the RTS) a sender waits before
    #: declaring the exchange failed.  None uses the physical minimum from
    #: MacTiming (CTS airtime + turnaround + margin ≈ 3 slots).  The
    #: default of 8 reflects the conservative failure detection the paper's
    #: contention throughput implies — with the 3-slot minimum, contention
    #: wars resolve so cheaply that BEB's reset-to-minimum beats MILD,
    #: inverting Table 2.  The failure-detection ablation sweeps this axis;
    #: see EXPERIMENTS.md.
    cts_timeout_slots: Optional[float] = 8.0
    #: Additive penalty, in slots, per retry in the B.2 inference rules.
    alpha: float = 2.0
    #: Attempts per packet before the MAC gives up (App. B "we allow a
    #: certain number of retries ... before discarding the packet").
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.backoff not in ("beb", "mild"):
            raise ValueError(f"unknown backoff algorithm {self.backoff!r}")
        if self.ack_variant not in ("immediate", "piggyback"):
            raise ValueError(f"unknown ack variant {self.ack_variant!r}")
        if self.use_nack and self.use_ack:
            raise ValueError("NACKs replace ACKs; enable one or the other")
        if not 1 <= self.bo_min <= self.bo_max:
            raise ValueError(
                f"need 1 <= bo_min <= bo_max, got {self.bo_min!r}, {self.bo_max!r}"
            )
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries!r}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha!r}")
        if not 0.0 <= self.contention_jitter <= 1.0:
            raise ValueError(
                f"contention_jitter must be in [0, 1], got {self.contention_jitter!r}"
            )

    def but(self, **changes: object) -> "ProtocolConfig":
        """A copy with the given fields replaced (for ablations)."""
        return replace(self, **changes)


#: Appendix A's MACA: RTS-CTS-DATA, BEB, one queue, one counter, no copying.
MACA_CONFIG = ProtocolConfig()

#: The full MACAW protocol of Appendix B.
MACAW_CONFIG = ProtocolConfig(
    use_ack=True,
    use_ds=True,
    use_rrts=True,
    backoff="mild",
    copy_backoff=True,
    per_destination=True,
    multi_queue=True,
)


def macaw_config(**changes: object) -> ProtocolConfig:
    """The full MACAW configuration, optionally with overrides."""
    return MACAW_CONFIG.but(**changes) if changes else MACAW_CONFIG


def maca_config(**changes: object) -> ProtocolConfig:
    """The Appendix A MACA configuration, optionally with overrides."""
    return MACA_CONFIG.but(**changes) if changes else MACA_CONFIG


# --------------------------------------------------------------------------
# Run profiles: the consolidated run-level configuration surface.
# --------------------------------------------------------------------------

def _normalize_grid_kwargs(value: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize grid-medium kwargs to a sorted, hashable item tuple."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = tuple(value)  # already an item sequence
    out = []
    for item in items:
        key, val = item
        if not isinstance(key, str):
            raise TypeError(f"grid_kwargs keys must be strings, got {key!r}")
        if isinstance(val, list):
            val = tuple(val)
        out.append((key, val))
    return tuple(sorted(out))


def _normalize_metrics(value: Any) -> Any:
    """Canonicalize a ``metrics`` knob to None / False / MetricsConfig.

    ``None`` defers to the ambient switch at build time, ``False`` forces
    metrics off, a :class:`~repro.obs.runtime.MetricsConfig` turns them
    on; ``True`` and bare numbers are sugar for a config.
    """
    if value is None or value is False:
        return value
    if value is True:
        return MetricsConfig()
    if isinstance(value, MetricsConfig):
        return value
    if isinstance(value, (int, float)):
        return MetricsConfig(interval=float(value))
    raise TypeError(
        f"metrics expects None/bool/seconds/MetricsConfig, got {value!r}"
    )


@dataclass(frozen=True)
class WarmStart:
    """Warm-start directive: branch runs from a snapshot store.

    Lives here (not in :mod:`repro.snapshot`) so the core profile can
    carry it without a layering inversion; the snapshot subsystem reads
    it, the profile only digests it.  ``store`` names a directory of
    keyed ``*.snap`` files; ``at`` is the warm-up horizon the snapshot
    is taken at; ``digest`` optionally pins the store's content hash
    (:func:`repro.snapshot.warmstart.store_digest`) so cache keys track
    snapshot contents, not just the intent to warm-start.
    """

    #: Simulated time the warm-up snapshot is captured at.
    at: float
    #: Directory holding (or receiving) the keyed snapshot files.
    store: str
    #: Optional content digest over the store's snapshots.
    digest: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at <= 0:
            raise ValueError(f"warm-start time must be > 0, got {self.at!r}")


@dataclass(frozen=True)
class RunProfile:
    """Every run-level knob of a scenario, as one immutable value.

    The single configuration object accepted by
    :class:`~repro.topo.builder.ScenarioBuilder` (``profile=``),
    :meth:`Experiment.run`/:meth:`Experiment.run_seeds` and
    :func:`repro.runner.run_cells`.  Seed, medium kind, protocol and
    :class:`ProtocolConfig` stay separate — they are the *identity* of an
    experiment variant, while the profile is how a run is executed and
    observed (plus which faults are injected into it).

    Fields are normalized on construction so equal configurations compare
    (and hash) equal regardless of spelling: ``metrics=2`` becomes a
    :class:`MetricsConfig`, ``grid_kwargs`` dicts become sorted item
    tuples, and an *empty* fault schedule becomes ``None`` — which is
    what makes an empty schedule digest-identical to no schedule at all.
    """

    #: Channel rate (§3: 256 kbps for PARC's radio).
    bitrate_bps: float = 256_000.0
    #: MAC queue bound per stream (None = unbounded).
    queue_capacity: Optional[int] = 64
    #: Explicit :class:`~repro.mac.timing.MacTiming`; None derives one
    #: from ``bitrate_bps``.
    timing: Optional["MacTiming"] = None
    #: Extra :class:`~repro.phy.grid_medium.GridMedium` constructor
    #: kwargs; accepts a mapping, stored as a sorted item tuple.
    grid_kwargs: Any = None
    #: Record a full protocol trace.
    trace: bool = False
    #: Run the conformance sanitizer after every run; None defers to
    #: :func:`repro.verify.runtime.sanitize_enabled`.
    sanitize: Optional[bool] = None
    #: Live instrumentation: None (ambient), False (off), True / seconds /
    #: :class:`~repro.obs.runtime.MetricsConfig` (on).
    metrics: Any = None
    #: Fault schedule to inject (:mod:`repro.fault`); empty normalizes to
    #: None so a no-op schedule cannot perturb digests or cache keys.
    faults: Optional["FaultSchedule"] = None
    #: Event-queue backend spec (``"heap"``, ``"wheel"``, ``"wheel:WIDTH"``);
    #: None resolves through ``$REPRO_QUEUE`` (else the heap) *at
    #: construction time*, so the stored field — and the digest — always
    #: name a concrete backend.  Results are backend-independent by
    #: contract, but the digest still distinguishes them so perf
    #: comparisons never read each other's cache entries.
    queue: Optional[str] = None
    #: Warm-start directive (:class:`WarmStart`); None runs cold from
    #: t=0.  Participates in :meth:`digest` so warm-started results can
    #: never collide with cold-run cache entries.
    warm_start: Optional[WarmStart] = None

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate_bps!r}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1 or None, got {self.queue_capacity!r}"
            )
        object.__setattr__(self, "grid_kwargs", _normalize_grid_kwargs(self.grid_kwargs))
        object.__setattr__(self, "metrics", _normalize_metrics(self.metrics))
        object.__setattr__(self, "trace", bool(self.trace))
        from repro.sim.queues import resolve_backend

        object.__setattr__(self, "queue", resolve_backend(self.queue))
        if self.faults is not None:
            from repro.fault.schedule import FaultSchedule

            if not isinstance(self.faults, FaultSchedule):
                raise TypeError(
                    f"faults expects a FaultSchedule or None, got {self.faults!r}"
                )
            if not self.faults:
                object.__setattr__(self, "faults", None)
        if self.warm_start is not None and not isinstance(self.warm_start, WarmStart):
            raise TypeError(
                f"warm_start expects a WarmStart or None, got {self.warm_start!r}"
            )

    # -------------------------------------------------------------- sugar
    def but(self, **changes: Any) -> "RunProfile":
        """A copy with the given fields replaced (normalization re-runs)."""
        return replace(self, **changes)

    def grid_dict(self) -> Dict[str, Any]:
        """The grid-medium kwargs as a plain dict (for ``GridMedium(**...)``)."""
        return dict(self.grid_kwargs)

    @classmethod
    def current(cls) -> "RunProfile":
        """The ambient profile (innermost :func:`active_profile`), else defaults."""
        ambient = ambient_profile()
        return ambient if ambient is not None else cls()

    # ------------------------------------------------------------- digest
    def digest(self) -> str:
        """Stable content hash over every result-affecting knob.

        This is what :func:`repro.runner.run_cells` folds into cache keys.
        ``timing`` serializes through its dataclass fields, ``metrics``
        through the resolved config, and ``faults`` through the
        schedule's canonical dict — an empty schedule was already
        normalized to None, so chaos sweeps and plain sweeps share their
        baseline cache entries.
        """
        if self.timing is None:
            timing_blob: Any = None
        elif is_dataclass(self.timing):
            timing_blob = {
                f.name: getattr(self.timing, f.name)
                for f in fields(self.timing) if f.init
            }
        else:  # pragma: no cover - defensive for duck-typed timings
            timing_blob = repr(self.timing)
        if self.metrics is None or self.metrics is False:
            metrics_blob: Any = bool(self.metrics) if self.metrics is not None else None
        else:
            metrics_blob = {
                "interval": self.metrics.interval,
                "capacity": self.metrics.capacity,
            }
        blob = json.dumps(
            {
                "bitrate_bps": self.bitrate_bps,
                "queue_capacity": self.queue_capacity,
                "timing": timing_blob,
                "grid_kwargs": [list(item) for item in self.grid_kwargs],
                "trace": self.trace,
                "sanitize": self.sanitize,
                "metrics": metrics_blob,
                "faults": None if self.faults is None else self.faults.to_dict(),
                "queue": self.queue,
                # The store *path* is deliberately not digested: equal
                # keyed builds produce byte-identical snapshots wherever
                # they are stored.  The content digest (when the caller
                # pins one) and the branch time are what distinguish
                # results.
                "warm_start": None if self.warm_start is None else {
                    "at": self.warm_start.at,
                    "digest": self.warm_start.digest,
                },
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Profile of the innermost active :func:`active_profile` block, if any.
_ambient_profile: Optional[RunProfile] = None


def ambient_profile() -> Optional[RunProfile]:
    """The innermost :func:`active_profile` block's profile, or None."""
    return _ambient_profile


@contextmanager
def active_profile(profile: RunProfile) -> Iterator[RunProfile]:
    """Make ``profile`` ambient for a block.

    Builders constructed inside the block without an explicit
    ``profile=`` argument (and without legacy kwargs) adopt it — how one
    CLI-constructed profile reaches every scenario an experiment driver
    builds, serially or inside pool workers.
    """
    global _ambient_profile
    if not isinstance(profile, RunProfile):
        raise TypeError(f"active_profile expects a RunProfile, got {profile!r}")
    previous = _ambient_profile
    _ambient_profile = profile
    try:
        yield profile
    finally:
        _ambient_profile = previous


# ------------------------------------------------------------ deprecation
#: Legacy-kwarg warnings already emitted this process (warn once each).
_warned_kwargs: Set[str] = set()


def warn_deprecated_kwarg(owner: str, name: str) -> None:
    """Emit one DeprecationWarning per (owner, kwarg) per process.

    The legacy keyword surface keeps working identically — the warning
    only points callers at the consolidated :class:`RunProfile`.
    """
    key = f"{owner}.{name}"
    if key in _warned_kwargs:
        return
    _warned_kwargs.add(key)
    warnings.warn(
        f"{owner}({name}=...) is deprecated; pass "
        f"profile=RunProfile({name}=...) instead "
        f"(RunProfile is re-exported by the repro.api facade)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which legacy kwargs warned (test hook for warn-once checks)."""
    _warned_kwargs.clear()
