"""Protocol configuration.

One dataclass captures every design axis the paper explores, so each
table's two columns differ by exactly one flag:

=====================  =========================================  =========
Flag                   Paper section                              Table
=====================  =========================================  =========
``copy_backoff``       backoff copying                            Table 1
``backoff``            BEB vs MILD                                Table 2
``multi_queue``        multiple stream model                      Table 3
``use_ack``            link-layer ACK                             Table 4
``use_ds``             data-sending packet                        Table 5
``use_rrts``           request-for-RTS                            Table 6
``per_destination``    per-destination backoff (App. B.2)         Table 8
=====================  =========================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class ProtocolConfig:
    """Feature flags and constants for the configurable exchange MAC."""

    #: Link-layer ACK after DATA (§3.3.1).
    use_ack: bool = False
    #: §4 extension: acknowledgement style when ``use_ack`` is on.
    #: "immediate" — an ACK frame after every DATA (the paper's MACAW);
    #: "piggyback" — while more packets are queued for the stream, skip the
    #: ACK frame and read the acknowledgement off the *next* exchange's CTS
    #: (the last packet of a burst still gets an immediate ACK).
    ack_variant: str = "immediate"
    #: §4 extension: when ``use_ack`` is off, have a receiver whose CTS drew
    #: no DATA send a NACK so the sender retransmits at media timescales
    #: without per-packet ACK overhead.
    use_nack: bool = False
    #: Data-sending announcement between CTS and DATA (§3.3.2).
    use_ds: bool = False
    #: Receiver-initiated contention (§3.3.3).
    use_rrts: bool = False
    #: Backoff adjustment: "beb" or "mild" (§3.1).
    backoff: str = "beb"
    #: Copy overheard backoff values (§3.1).
    copy_backoff: bool = False
    #: Separate congestion estimates per stream end (§3.4, App. B.2).
    per_destination: bool = False
    #: Per-stream queues with earliest-retry-slot selection (§3.2);
    #: False = one FIFO per station.
    multi_queue: bool = False
    #: Appendix-B-literal overheard-RTS defer (full exchange) instead of the
    #: §3.3.2 semantics (until the CTS slot passes).  See DESIGN.md.
    rts_defer_full_exchange: bool = False
    #: §3.3.2's alternative to the DS packet: sense the carrier before
    #: transmitting an RTS and hold until "one slot time after it detects
    #: no carrier" (essentially CSMA/CA).
    carrier_sense: bool = False
    #: When a defer interrupts a pending contention countdown, draw a fresh
    #: delay at the defer's end (False — the literal Appendix-B WFContend
    #: rule, and the default) or resume the interrupted countdown like
    #: 802.11 DCF (True).  Resuming synchronizes backed-off stations to
    #: contention periods so strongly that the paper's capture and
    #: starvation dynamics (Tables 1, 6, 7) cannot form; the redraw rule
    #: reproduces them.
    defer_resume: bool = False
    #: Fraction of a slot of uniform random phase added to every contention
    #: delay.  Stations have no shared slot clock: two draws landing within
    #: one slot of each other partially overlap and collide, which is what
    #: makes low-backoff contention wars expensive (and BEB's reset-to-
    #: minimum costly, §3.1).  Set to 0 for perfectly slot-synchronized
    #: stations (an idealization).
    contention_jitter: float = 1.0

    #: Contention bounds, in slots (§3: BO_min = 2, BO_max = 64).
    bo_min: float = 2.0
    bo_max: float = 64.0
    #: How long (in slots, from the end of the RTS) a sender waits before
    #: declaring the exchange failed.  None uses the physical minimum from
    #: MacTiming (CTS airtime + turnaround + margin ≈ 3 slots).  The
    #: default of 8 reflects the conservative failure detection the paper's
    #: contention throughput implies — with the 3-slot minimum, contention
    #: wars resolve so cheaply that BEB's reset-to-minimum beats MILD,
    #: inverting Table 2.  The failure-detection ablation sweeps this axis;
    #: see EXPERIMENTS.md.
    cts_timeout_slots: Optional[float] = 8.0
    #: Additive penalty, in slots, per retry in the B.2 inference rules.
    alpha: float = 2.0
    #: Attempts per packet before the MAC gives up (App. B "we allow a
    #: certain number of retries ... before discarding the packet").
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.backoff not in ("beb", "mild"):
            raise ValueError(f"unknown backoff algorithm {self.backoff!r}")
        if self.ack_variant not in ("immediate", "piggyback"):
            raise ValueError(f"unknown ack variant {self.ack_variant!r}")
        if self.use_nack and self.use_ack:
            raise ValueError("NACKs replace ACKs; enable one or the other")
        if not 1 <= self.bo_min <= self.bo_max:
            raise ValueError(
                f"need 1 <= bo_min <= bo_max, got {self.bo_min!r}, {self.bo_max!r}"
            )
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries!r}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha!r}")
        if not 0.0 <= self.contention_jitter <= 1.0:
            raise ValueError(
                f"contention_jitter must be in [0, 1], got {self.contention_jitter!r}"
            )

    def but(self, **changes: object) -> "ProtocolConfig":
        """A copy with the given fields replaced (for ablations)."""
        return replace(self, **changes)


#: Appendix A's MACA: RTS-CTS-DATA, BEB, one queue, one counter, no copying.
MACA_CONFIG = ProtocolConfig()

#: The full MACAW protocol of Appendix B.
MACAW_CONFIG = ProtocolConfig(
    use_ack=True,
    use_ds=True,
    use_rrts=True,
    backoff="mild",
    copy_backoff=True,
    per_destination=True,
    multi_queue=True,
)


def macaw_config(**changes: object) -> ProtocolConfig:
    """The full MACAW configuration, optionally with overrides."""
    return MACAW_CONFIG.but(**changes) if changes else MACAW_CONFIG


def maca_config(**changes: object) -> ProtocolConfig:
    """The Appendix A MACA configuration, optionally with overrides."""
    return MACA_CONFIG.but(**changes) if changes else MACA_CONFIG
