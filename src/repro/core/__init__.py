"""The paper's contribution: MACAW and its backoff machinery.

* :mod:`repro.core.backoff` — BEB and MILD adjustment (§3.1), the copying
  scheme (§3.1), and the per-destination estimates with the Appendix B.2
  bookkeeping (§3.4).
* :mod:`repro.core.streams` — the multiple stream model (§3.2).
* :mod:`repro.core.macaw` — the ten-state RTS-CTS-DS-DATA-ACK state machine
  with RRTS and multicast (§3.3, Appendix B).  The same machine, with
  features disabled, realizes Appendix A's MACA — so every comparison in
  the paper differs only by configuration flags.
"""

from repro.core.backoff import (
    BackoffAlgorithm,
    BinaryExponentialBackoff,
    MildBackoff,
    BackoffBook,
    make_backoff,
)
from repro.core.streams import StreamQueue, QueuedPacket
from repro.core.macaw import MacawMac
from repro.core.config import (
    ProtocolConfig,
    RunProfile,
    WarmStart,
    active_profile,
    ambient_profile,
    macaw_config,
)

__all__ = [
    "BackoffAlgorithm",
    "BinaryExponentialBackoff",
    "MildBackoff",
    "BackoffBook",
    "make_backoff",
    "StreamQueue",
    "QueuedPacket",
    "MacawMac",
    "macaw_config",
    "ProtocolConfig",
    "RunProfile",
    "WarmStart",
    "active_profile",
    "ambient_profile",
]
