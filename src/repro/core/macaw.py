"""The MACAW media access protocol (Appendix B), as a configurable machine.

One state machine implements the whole design-space the paper explores.
With every flag enabled it is MACAW: the RTS-CTS-DS-DATA-ACK exchange,
RRTS receiver-initiated contention, MILD backoff with copying and
per-destination estimates, and per-stream queues.  With every flag disabled
it is exactly Appendix A's MACA: RTS-CTS-DATA with a single BEB counter and
a single FIFO.  Each of the paper's tables compares two settings of one
flag, so building both protocols from one machine guarantees the comparison
isolates the intended mechanism.

State machine summary (sender left, receiver right)::

      CONTEND --RTS--> WFCTS           IDLE --RTS--> (CTS) --> WFDS
      WFCTS --CTS--> SendData           WFDS --DS--> WFData
      SendData: DS, DATA  --> WFACK     WFData --DATA--> (ACK) --> IDLE
      WFACK --ACK--> IDLE

Deferral: overheard RTS defers until the CTS slot passes; overheard CTS
defers for the DATA (+DS/ACK); overheard DS defers until the ACK slot has
passed; overheard RRTS defers two slots.  A station that receives an RTS it
cannot answer (because it is deferring) remembers the sender and, when the
medium frees, contends to send an RRTS on the sender's behalf (§3.3.3).

Implementation notes (documented deviations are listed in DESIGN.md):

* Defer information arriving mid-exchange (e.g. in WFCTS) is recorded but
  does not preempt the exchange; the appendix's strict rule-precedence
  would abandon exchanges that usually still complete.
* Appendix B's timeout rule 2 sends the RRTS and "goes to WFDATA"; we go to
  WFRTS, which rule 12 then services — the WFDATA reading leaves WFRTS
  unreachable and is evidently a typo.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.core.backoff import BackoffBook
from repro.core.config import MACAW_CONFIG, ProtocolConfig
from repro.core.streams import QueuedPacket, StreamQueue
from repro.mac.base import BaseMac, MacState
from repro.mac.frames import (
    Frame,
    FrameType,
    MULTICAST,
    control_frame,
    data_frame,
)
from repro.mac.timing import MacTiming
from repro.phy.medium import Medium, Transmission
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


class MacawMac(BaseMac):
    """A station running the (configurable) MACAW protocol."""

    protocol_name = "macaw"

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        config: ProtocolConfig = MACAW_CONFIG,
        timing: Optional[MacTiming] = None,
        queue_capacity: Optional[int] = 64,
    ) -> None:
        super().__init__(sim, medium, name, position, timing)
        self.config = config
        self.backoff = BackoffBook(config)
        self.queue = StreamQueue(multi=config.multi_queue, capacity=queue_capacity)
        self.state = MacState.IDLE
        #: End of the current defer period (stations never transmit before it).
        self.quiet_until = 0.0

        self._state_timer = Timer(sim, self._on_state_timeout, name=f"{name}:state")
        self._contend_timer = Timer(sim, self._on_contention_fire, name=f"{name}:contend")
        self._quiet_timer = Timer(sim, self._on_quiet_expired, name=f"{name}:quiet")

        # Sender-side context.
        self._current: Optional[QueuedPacket] = None
        self._contend_choice: Optional[Tuple[str, Any]] = None  # ("data", entry) | ("rrts", src, bytes)
        #: Remaining contention delay frozen by a defer (defer_resume mode).
        self._contend_remaining: Optional[float] = None
        self._next_esn: Dict[str, int] = {}

        # Receiver-side context: (peer, data_bytes, esn, no_ack_request).
        self._peer: Optional[Tuple[str, int, Optional[int], bool]] = None
        #: Last DATA esn acknowledged, per sender (control rule 7 dedup).
        self._acked_esn: Dict[str, int] = {}
        #: All DATA esns received per sender (piggyback confirmation can be
        #: queried out of order once resurrections reorder the stream).
        self._received_esns: Dict[str, Set[int]] = {}
        #: §4 extensions: packets completed optimistically (piggyback ACK
        #: or NACK mode) awaiting confirmation, per destination.
        self._unconfirmed: Dict[str, QueuedPacket] = {}
        #: Whether the in-progress exchange's RTS carried no_ack_request.
        self._current_no_ack = False

        #: First RTS we could not answer while deferring: (src, data_bytes).
        self._pending_rrts: Optional[Tuple[str, int]] = None

    # ======================================================== upper layer
    def enqueue(self, payload: Any, dst: str, size_bytes: int) -> bool:
        """Queue a network packet for ``dst`` (a MAC name or MULTICAST)."""
        if not self.powered:
            self.stats.enqueue_rejected += 1
            return False
        entry = self.queue.push(payload, dst, size_bytes, self.sim.now)
        if entry is None:
            self.stats.enqueue_rejected += 1
            return False
        if self.state is MacState.IDLE:
            self._maybe_contend()
        return True

    def queue_len(self) -> int:
        return len(self.queue)

    # -------------------------------------------------------- probe surface
    def backoff_value(self) -> Optional[float]:
        """Current local backoff counter F(station) — the Table 2 signal."""
        return self.backoff.my_backoff

    def current_retries(self) -> int:
        entry = self._current
        return entry.retries if entry is not None else 0

    def _on_power_change(self, powered: bool) -> None:
        self._state_timer.stop()
        self._contend_timer.stop()
        self._quiet_timer.stop()
        self.state = MacState.IDLE
        self._current = None
        self._contend_choice = None
        self._contend_remaining = None
        self._peer = None
        self._pending_rrts = None
        self._unconfirmed.clear()
        self._current_no_ack = False
        self.quiet_until = 0.0
        if powered and not self.queue.is_empty():
            self._maybe_contend()

    # ========================================================== contention
    def _deferring(self) -> bool:
        return self.sim.now < self.quiet_until

    def _has_work(self) -> bool:
        return not self.queue.is_empty() or self._pending_rrts is not None

    def _maybe_contend(self) -> None:
        """Move from a completed/aborted exchange toward the next one."""
        if not self.powered:
            # A dead radio must never contend.  Reachable only through a
            # callback that slipped past the power-off reset (the medium
            # guards transmit-complete, but belt-and-braces here).
            return
        if not self._has_work():
            self._set_state(MacState.IDLE)
            return
        if self._deferring():
            self._enter_quiet()
            return
        if (
            self._contend_remaining is not None
            and self._contend_choice is not None
            and self._pending_rrts is None
        ):
            # Resume the countdown a defer interrupted (defer_resume mode):
            # the station keeps its place in line rather than re-rolling.
            remaining = self._contend_remaining
            self._contend_remaining = None
            self._set_state(MacState.CONTEND)
            self._contend_timer.start(remaining)
            return
        self._contend_remaining = None
        self._enter_contend()

    def _enter_quiet(self) -> None:
        self._set_state(MacState.WFCONTEND if self._has_work() else MacState.QUIET)
        self._quiet_timer.extend_to(self.quiet_until)

    def _enter_contend(self) -> None:
        """Draw per-candidate retry slots and arm the earliest (§3.2).

        Candidates are the head packet of each eligible stream plus, when
        RRTS is enabled, the pending receiver-initiated contention.  Each
        draws uniformly in [1, BO(candidate)]; the earliest slot wins.
        """
        self._set_state(MacState.CONTEND)
        self._contend_remaining = None
        best_slots: Optional[int] = None
        choice: Optional[Tuple[str, Any]] = None
        if self._pending_rrts is not None and self.config.use_rrts:
            src, data_bytes = self._pending_rrts
            slots = self.draw_slots(self.backoff.contention_backoff(src))
            best_slots, choice = slots, ("rrts", src, data_bytes)
        for entry in self.queue.candidates():
            dst = None if entry.dst == MULTICAST else entry.dst
            slots = self.draw_slots(
                self.backoff.contention_backoff(dst, retries=entry.retries)
            )
            if best_slots is None or slots < best_slots:
                best_slots, choice = slots, ("data", entry)
        if choice is None:  # no work after all
            self._set_state(MacState.IDLE)
            return
        self._contend_choice = choice
        delay = best_slots * self.timing.slot
        if self.config.contention_jitter > 0.0:
            # Stations share no slot clock; phase jitter makes near-miss
            # draws physically overlap (see ProtocolConfig).
            u = float(self.sim.streams.get(f"mac:{self.name}").random())
            delay += u * self.config.contention_jitter * self.timing.slot
        self._contend_timer.start(delay)

    def _on_contention_fire(self) -> None:
        if self.state is not MacState.CONTEND or self._contend_choice is None:
            return
        if self._deferring():  # defensive: a defer should have moved us out
            self._enter_quiet()
            return
        if self.config.carrier_sense and self.medium.carrier_sensed(self):
            # §3.3.2's CSMA/CA alternative to DS: hold the RTS until one
            # slot after the carrier clears (realized as a short defer and
            # a fresh contention draw).
            self._defer_for(2 * self.timing.slot)
            return
        choice = self._contend_choice
        self._contend_choice = None
        if choice[0] == "rrts":
            _, src, data_bytes = choice
            self._pending_rrts = None
            self._send_rrts(src, data_bytes)
        else:
            self._start_exchange(choice[1])

    # ====================================================== sender side
    def _start_exchange(self, entry: QueuedPacket) -> None:
        if entry.dst == MULTICAST:
            self._start_multicast(entry)
            return
        if entry.esn is None:
            entry.esn = self._next_esn.get(entry.dst, 0)
            self._next_esn[entry.dst] = entry.esn + 1
            self.backoff.begin_attempt(entry.dst)
        self._current = entry
        local, remote = self.backoff.fields_for(entry.dst)
        # §4 piggyback: while more packets are queued for this stream, tell
        # the receiver we will read the acknowledgement off its next CTS.
        no_ack_request = (
            self.config.use_ack
            and self.config.ack_variant == "piggyback"
            and self.queue.depth_by_stream().get(entry.dst, 0) > 1
        )
        pending = self._unconfirmed.get(entry.dst)
        rts = control_frame(
            FrameType.RTS,
            self.name,
            entry.dst,
            data_bytes=entry.size_bytes,
            local_backoff=local,
            remote_backoff=remote,
            esn=entry.esn,
            retry=entry.retries > 0,
            no_ack_request=no_ack_request,
            # Ask the receiver to confirm the previous optimistic packet.
            ack_esn=pending.esn if pending is not None else None,
        )
        self._current_no_ack = no_ack_request
        if self.send_frame(rts) is None:
            # Could not transmit (mid-send); treat as an immediate miss.
            self._current = None
            self._maybe_contend()
            return
        self._set_state(MacState.WFCTS)
        # The CTS timer starts when our RTS leaves the air (transmit-complete).

    def _start_multicast(self, entry: QueuedPacket) -> None:
        """§3.3.4: multicast is RTS followed immediately by DATA; overhearers
        of the RTS defer for the DATA length, and there is no CTS or ACK."""
        self._current = entry
        local, remote = self.backoff.fields_for(None)
        rts = control_frame(
            FrameType.RTS,
            self.name,
            MULTICAST,
            data_bytes=entry.size_bytes,
            local_backoff=local,
            remote_backoff=remote,
        )
        if self.send_frame(rts) is None:
            self._current = None
            self._maybe_contend()
            return
        self._set_state(MacState.SENDDATA)

    def _send_rrts(self, dst: str, data_bytes: int) -> None:
        local, remote = self.backoff.fields_for(dst)
        rrts = control_frame(
            FrameType.RRTS,
            self.name,
            dst,
            data_bytes=data_bytes,
            local_backoff=local,
            remote_backoff=remote,
        )
        if self.send_frame(rrts) is None:
            self._maybe_contend()
            return
        self._set_state(MacState.WFRTS)

    def on_transmit_complete(self, transmission: Transmission) -> None:
        kind = transmission.frame.kind
        if kind is FrameType.RTS:
            if transmission.frame.is_multicast:
                self._transmit_current_data()
            elif self.state is MacState.WFCTS:
                if self.config.cts_timeout_slots is not None:
                    self._state_timer.start(
                        self.config.cts_timeout_slots * self.timing.slot
                    )
                else:
                    self._state_timer.start(self.timing.cts_timeout())
        elif kind is FrameType.RRTS:
            if self.state is MacState.WFRTS:
                self._state_timer.start(self.timing.rts_timeout())
        elif kind is FrameType.CTS:
            if self.state is MacState.WFDS:
                self._state_timer.start(self.timing.ds_timeout())
            elif self.state is MacState.WFDATA and self._peer is not None:
                self._state_timer.start(self.timing.data_timeout(self._peer[1]))
        elif kind is FrameType.DS:
            self._transmit_current_data()
        elif kind is FrameType.DATA:
            self._after_data_sent(transmission.frame)
        elif kind is FrameType.ACK:
            if self.state is MacState.IDLE:
                self._maybe_contend()

    def _transmit_current_data(self) -> None:
        entry = self._current
        if entry is None:  # exchange aborted meanwhile
            return
        dst = entry.dst
        local, remote = self.backoff.fields_for(None if dst == MULTICAST else dst)
        frame = data_frame(
            self.name,
            dst,
            entry.size_bytes,
            payload=entry.payload,
            local_backoff=local,
            remote_backoff=remote,
            esn=entry.esn,
        )
        if self.send_frame(frame) is None:
            self._fail_attempt()
            return
        self._set_state(MacState.SENDDATA)

    def _after_data_sent(self, frame: Frame) -> None:
        entry = self._current
        if entry is None:
            return
        if frame.is_multicast:
            self._finalize_success()
        elif self.config.use_ack and not self._current_no_ack:
            self._set_state(MacState.WFACK)
            self._state_timer.start(self.timing.ack_timeout())
        elif self.config.use_ack or self.config.use_nack:
            # §4 optimistic completion: no immediate confirmation expected.
            # Keep the packet so a later piggyback mismatch or a NACK can
            # resurrect it.  In NACK mode an overwritten stash is a packet
            # whose NACK (if any) we missed — best-effort by design.
            if entry.dst in self._unconfirmed and self.config.use_nack:
                self.stats.silent_losses += 1
            self._unconfirmed[entry.dst] = entry
            self._finalize_success()
        else:
            # Without a link ACK the sender learns nothing more; the
            # exchange is complete from the MAC's point of view (§2.3).
            self._finalize_success()

    def _finalize_success(self) -> None:
        entry = self._current
        assert entry is not None
        self._current = None
        dst = None if entry.dst == MULTICAST else entry.dst
        self.backoff.on_success(dst)
        self.queue.pop(entry)
        self.notify_sent(entry.payload, entry.dst)
        self._set_state(MacState.IDLE)
        self._maybe_contend()

    def _fail_attempt(self) -> None:
        """An attempt produced no reply: back off, maybe give up, re-contend."""
        entry = self._current
        assert entry is not None
        self._current = None
        entry.retries += 1
        dst = None if entry.dst == MULTICAST else entry.dst
        if entry.retries >= self.config.max_retries:
            self.backoff.on_give_up(dst)
            self.queue.pop(entry)
            self.notify_drop(entry.payload, entry.dst)
            # Any optimistically-completed packet for this destination can
            # no longer be confirmed; let it go.
            self._unconfirmed.pop(entry.dst, None)
        else:
            self.backoff.on_timeout(dst, entry.retries)
        self._set_state(MacState.IDLE)
        self._maybe_contend()

    # ====================================================== receiver side
    def _respond_cts(self, frame: Frame) -> None:
        self._state_timer.stop()  # we may arrive here from WFRTS
        self._contend_timer.stop()
        self._contend_choice = None
        self._contend_remaining = None
        self._peer = (frame.src, frame.data_bytes, frame.esn, frame.no_ack_request)
        local, remote = self.backoff.fields_for(frame.src)
        # §4 piggyback: answer the sender's confirmation query — echo the
        # queried ESN iff that packet actually arrived here.
        query = frame.ack_esn
        confirmed = (
            query is not None and query in self._received_esns.get(frame.src, ())
        )
        cts = control_frame(
            FrameType.CTS,
            self.name,
            frame.src,
            data_bytes=frame.data_bytes,
            local_backoff=local,
            remote_backoff=remote,
            esn=frame.esn,
            ack_esn=query if confirmed else None,
        )
        if self.send_frame(cts) is None:
            self._peer = None
            self._maybe_contend()
            return
        self._set_state(MacState.WFDS if self.config.use_ds else MacState.WFDATA)
        # Timer armed when the CTS finishes transmitting.

    def _send_ack(self, dst: str, esn: Optional[int]) -> None:
        local, remote = self.backoff.fields_for(dst)
        ack = control_frame(
            FrameType.ACK,
            self.name,
            dst,
            local_backoff=local,
            remote_backoff=remote,
            esn=esn,
        )
        self.send_frame(ack)

    # ========================================================== reception
    def on_frame(self, frame: Frame, clean: bool) -> None:
        if not clean:
            self.stats.corrupted += 1
            return
        self.stats.count_received(frame.kind)
        self.backoff.on_frame_heard(frame, addressed_to_me=frame.dst == self.name)
        if frame.dst == self.name:
            self._handle_addressed(frame)
        elif frame.is_multicast:
            self._handle_multicast(frame)
        else:
            self._handle_overheard(frame)

    # -------------------------------------------------------- addressed
    def _handle_addressed(self, frame: Frame) -> None:
        kind = frame.kind
        if kind is FrameType.RTS:
            self._on_rts(frame)
        elif kind is FrameType.CTS:
            self._on_cts(frame)
        elif kind is FrameType.DS:
            self._on_ds(frame)
        elif kind is FrameType.DATA:
            self._on_data(frame)
        elif kind is FrameType.ACK:
            self._on_ack(frame)
        elif kind is FrameType.RRTS:
            self._on_rrts(frame)
        elif kind is FrameType.NACK:
            self._on_nack(frame)

    def _on_rts(self, frame: Frame) -> None:
        answerable = self.state in (MacState.IDLE, MacState.CONTEND, MacState.WFRTS)
        if answerable and not self._deferring():
            # Control rule 7: an RTS that re-requests data we already
            # acknowledged gets the ACK again instead of a CTS.
            if (
                self.config.use_ack
                and frame.esn is not None
                and (
                    self._acked_esn.get(frame.src) == frame.esn
                    or frame.esn in self._received_esns.get(frame.src, ())
                )
            ):
                self._contend_timer.stop()
                self._contend_choice = None
                self._contend_remaining = None
                self._send_ack(frame.src, frame.esn)
                self._set_state(MacState.IDLE)
                return
            self._respond_cts(frame)
            return
        if self.state in (MacState.QUIET, MacState.WFCONTEND) or (
            answerable and self._deferring()
        ):
            # Control rule 9 / §3.3.3: remember the first unanswerable RTS
            # and contend on the sender's behalf once the medium frees.
            if self.config.use_rrts and self._pending_rrts is None:
                self._pending_rrts = (frame.src, frame.data_bytes)
                if self.state in (MacState.QUIET, MacState.WFCONTEND):
                    self._set_state(MacState.WFCONTEND)
        # Mid-exchange states ignore the RTS; the sender's timer recovers.

    def _reconcile_unconfirmed(self, cts: Frame) -> None:
        """§4 piggyback: the CTS's ack field settles the previous packet.

        A mismatch means the optimistically-completed DATA never arrived;
        the packet returns to the head of its stream (it will be delivered
        after the exchange now in progress — a one-packet reordering the
        transports tolerate).
        """
        if not self.config.use_ack:
            return  # NACK-mode stashes are settled by NACKs, not CTS frames
        stale = self._unconfirmed.pop(cts.src, None)
        if stale is None:
            return
        confirmed = cts.ack_esn is not None and cts.ack_esn == stale.esn
        if not confirmed:
            stale.retries += 1
            if stale.retries >= self.config.max_retries:
                self.notify_drop(stale.payload, stale.dst)
            else:
                # Head of line again; the exchange now in progress (for the
                # packet behind it) still completes its own entry — queue
                # removal is by identity.
                self.queue.push_front(stale)

    def _on_cts(self, frame: Frame) -> None:
        self._reconcile_unconfirmed(frame)
        entry = self._current
        if (
            self.state is MacState.WFCTS
            and entry is not None
            and frame.src == entry.dst
            and (frame.esn is None or frame.esn == entry.esn)
        ):
            self._state_timer.stop()
            if self.config.use_ds:
                local, remote = self.backoff.fields_for(entry.dst)
                ds = control_frame(
                    FrameType.DS,
                    self.name,
                    entry.dst,
                    data_bytes=entry.size_bytes,
                    local_backoff=local,
                    remote_backoff=remote,
                    esn=entry.esn,
                )
                if self.send_frame(ds) is None:
                    self._fail_attempt()
                    return
                self._set_state(MacState.SENDDATA)
            else:
                self._transmit_current_data()

    def _on_ds(self, frame: Frame) -> None:
        if (
            self.state is MacState.WFDS
            and self._peer is not None
            and frame.src == self._peer[0]
        ):
            self._state_timer.stop()
            self._set_state(MacState.WFDATA)
            self._state_timer.start(self.timing.data_timeout(self._peer[1]))

    def _on_data(self, frame: Frame) -> None:
        if (
            self.state is not MacState.WFDATA
            or self._peer is None
            or frame.src != self._peer[0]
        ):
            return
        self._state_timer.stop()
        peer_name, _, _, no_ack_request = self._peer
        self._peer = None
        received = self._received_esns.setdefault(frame.src, set())
        duplicate = frame.esn is not None and (
            self._acked_esn.get(frame.src) == frame.esn or frame.esn in received
        )
        if duplicate:
            self.stats.duplicates += 1
        else:
            if frame.esn is not None:
                self._acked_esn[frame.src] = frame.esn
                received.add(frame.esn)
                if len(received) > 256:
                    # ESNs are monotone per stream; forget the distant past.
                    for old in sorted(received)[:128]:
                        received.discard(old)
            self.deliver_up(frame.payload, frame.src)
        self._set_state(MacState.IDLE)
        if self.config.use_ack and not no_ack_request:
            self._send_ack(peer_name, frame.esn)
            # _maybe_contend runs when the ACK finishes transmitting.
        else:
            # Piggyback mode: the acknowledgement rides on our next CTS
            # to this sender (the _acked_esn update above).
            self._maybe_contend()

    def _on_ack(self, frame: Frame) -> None:
        entry = self._current
        if entry is None or frame.src != entry.dst:
            return
        if frame.esn is not None and frame.esn != entry.esn:
            return
        if self.state is MacState.WFACK:
            self._state_timer.stop()
            self._finalize_success()
        elif self.state is MacState.WFCTS:
            # Rule 7 response path: the receiver had our data all along.
            self._state_timer.stop()
            self._finalize_success()

    def _on_nack(self, frame: Frame) -> None:
        """§4 NACK extension: the receiver's CTS drew no clean DATA from
        us — resurrect the optimistically-completed packet."""
        if not self.config.use_nack:
            return
        stale = self._unconfirmed.get(frame.src)
        if stale is None or (frame.esn is not None and frame.esn != stale.esn):
            return
        del self._unconfirmed[frame.src]
        stale.retries += 1
        if stale.retries >= self.config.max_retries:
            self.notify_drop(stale.payload, stale.dst)
            return
        self.queue.push_front(stale)
        if self.state is MacState.IDLE:
            self._maybe_contend()

    def _on_rrts(self, frame: Frame) -> None:
        """Rule 13: answer an RRTS with an immediate RTS for that stream."""
        if not self.config.use_rrts:
            return
        if self.state not in (MacState.IDLE, MacState.CONTEND):
            return
        if self._deferring():
            return
        entry = self.queue.head_for(frame.src)
        if entry is None:
            return
        self._contend_timer.stop()
        self._contend_choice = None
        self._contend_remaining = None
        self._start_exchange(entry)

    # -------------------------------------------------------- multicast
    def _handle_multicast(self, frame: Frame) -> None:
        if frame.kind is FrameType.RTS:
            self._defer_for(self.timing.defer_after_multicast_rts(frame.data_bytes))
        elif frame.kind is FrameType.DATA:
            self.deliver_up(frame.payload, frame.src)

    # -------------------------------------------------------- overheard
    def _handle_overheard(self, frame: Frame) -> None:
        kind = frame.kind
        timing = self.timing
        if kind is FrameType.RTS:
            if self.config.rts_defer_full_exchange:
                self._defer_for(timing.defer_full_exchange(frame.data_bytes))
            else:
                self._defer_for(timing.defer_after_rts())
        elif kind is FrameType.CTS:
            self._defer_for(
                timing.defer_after_cts(
                    frame.data_bytes, self.config.use_ds, self.config.use_ack
                )
            )
        elif kind is FrameType.DS:
            self._defer_for(timing.defer_after_ds(frame.data_bytes, self.config.use_ack))
        elif kind is FrameType.RRTS:
            self._defer_for(timing.defer_after_rrts())
        # Overheard DATA and ACK frames impose no further deferral: the
        # airtime itself kept us silent (we were receiving, not contending).

    def _defer_for(self, span: float) -> None:
        """Extend the quiet horizon; preempt IDLE/CONTEND immediately.

        Mid-exchange states only record the horizon: the exchange runs to
        completion (or timeout) and the defer is honoured afterwards.
        """
        until = self.sim.now + span
        if until <= self.quiet_until and self.state in (MacState.QUIET, MacState.WFCONTEND):
            return
        self.quiet_until = max(self.quiet_until, until)
        if self.state is MacState.CONTEND and self.config.defer_resume:
            expires = self._contend_timer.expires_at
            if expires is not None:
                self._contend_remaining = max(expires - self.sim.now, 0.0)
        if self.state in (MacState.IDLE, MacState.CONTEND, MacState.QUIET, MacState.WFCONTEND):
            self._contend_timer.stop()
            if self._contend_remaining is None:
                self._contend_choice = None
            self._enter_quiet()

    def _on_quiet_expired(self) -> None:
        if self.state not in (MacState.QUIET, MacState.WFCONTEND):
            return
        if self._deferring():  # horizon moved while the timer was in flight
            self._quiet_timer.extend_to(self.quiet_until)
            return
        self._maybe_contend()

    # ========================================================== timeouts
    def _on_state_timeout(self) -> None:
        state = self.state
        if state is MacState.WFCTS:
            self.stats.cts_timeouts += 1
            self._fail_attempt()
        elif state is MacState.WFACK:
            self.stats.ack_timeouts += 1
            # §3.3.1: a successful RTS-CTS but missing ACK leaves the
            # backoff untouched; the packet is retransmitted (same ESN).
            entry = self._current
            assert entry is not None
            self._current = None
            entry.retries += 1
            if entry.retries >= self.config.max_retries:
                dst = None if entry.dst == MULTICAST else entry.dst
                self.backoff.on_give_up(dst)
                self.queue.pop(entry)
                self.notify_drop(entry.payload, entry.dst)
            self._set_state(MacState.IDLE)
            self._maybe_contend()
        elif state in (MacState.WFRTS, MacState.WFDS, MacState.WFDATA):
            peer = self._peer
            self._peer = None
            self._set_state(MacState.IDLE)
            if (
                self.config.use_nack
                and peer is not None
                and state in (MacState.WFDS, MacState.WFDATA)
            ):
                # §4 NACK extension: we granted a CTS but the data never
                # arrived cleanly — tell the sender so it retransmits at
                # media timescales instead of trusting silence.
                local, remote = self.backoff.fields_for(peer[0])
                nack = control_frame(
                    FrameType.NACK, self.name, peer[0],
                    local_backoff=local, remote_backoff=remote, esn=peer[2],
                )
                self.send_frame(nack)
                return  # _maybe_contend runs when the NACK finishes
            self._maybe_contend()
        elif state is MacState.SENDDATA:  # pragma: no cover - defensive
            self._set_state(MacState.IDLE)
            self._maybe_contend()

    # ============================================================ helpers
    def _set_state(self, state: MacState) -> None:
        if state is not self.state:
            trace = self.sim.trace
            if trace.enabled:
                trace.record(
                    self.sim.now, "state", self.name, frm=self.state.value, to=state.value
                )
            probe = self.probe
            if probe is not None:
                probe.note_state(self.state.value, state.value, self.sim.now)
            self.state = state
        if state is not MacState.CONTEND:
            self._contend_timer.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MacawMac({self.name!r}, state={self.state.value},"
            f" queue={len(self.queue)}, bo={self.backoff.my_backoff:.1f})"
        )
