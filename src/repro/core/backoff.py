"""Backoff adjustment, copying, and per-destination estimation.

Three layers, matching the paper's narrative:

1. **Adjustment** (§3.1): how a single counter moves.
   BEB doubles on failure and resets to BO_min on success; MILD multiplies
   by 1.5 on failure and decrements by 1 on success.

2. **Copying** (§3.1): congestion learning is collective.  Every packet
   header carries the sender's backoff; any station that hears a packet
   copies that value, so all stations in a cell share one view of the
   ambient contention level.

3. **Per-destination estimation** (§3.4, Appendix B.2): one number cannot
   describe inhomogeneous congestion, so each station keeps, per remote
   station Q: an estimate of Q's congestion (``remote``), the local value
   used in exchanges with Q (``local``), an exchange sequence number, and a
   retry count.  The backoff used when transmitting to Q is the **sum** of
   the two ends' values (footnote 9).

:class:`BackoffBook` packages all three behind the handful of events a MAC
state machine generates: attempt, success, timeout, give-up, frame heard.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import ProtocolConfig
from repro.mac.frames import Frame, FrameType


class BackoffAlgorithm(ABC):
    """How one backoff counter responds to failure and success."""

    def __init__(self, bo_min: float, bo_max: float) -> None:
        if not 1 <= bo_min <= bo_max:
            raise ValueError(f"need 1 <= bo_min <= bo_max, got {bo_min!r}, {bo_max!r}")
        self.bo_min = bo_min
        self.bo_max = bo_max

    def clamp(self, value: float) -> float:
        """Clip a counter into [bo_min, bo_max]."""
        return min(max(value, self.bo_min), self.bo_max)

    @abstractmethod
    def increase(self, value: float) -> float:
        """Counter after a failed attempt."""

    @abstractmethod
    def decrease(self, value: float) -> float:
        """Counter after a successful exchange."""


class BinaryExponentialBackoff(BackoffAlgorithm):
    """BEB: F_inc(x) = min(2x, BO_max); F_dec(x) = BO_min (§3.1)."""

    def increase(self, value: float) -> float:
        return self.clamp(2.0 * value)

    def decrease(self, value: float) -> float:
        return self.bo_min


class MildBackoff(BackoffAlgorithm):
    """MILD: F_inc(x) = min(1.5x, BO_max); F_dec(x) = max(x-1, BO_min).

    Multiplicative increase / linear decrease avoids BEB's oscillation:
    the counter neither resets to the floor after one success nor needs a
    fresh contention war after every transmission (§3.1).
    """

    INCREASE_FACTOR = 1.5

    def __init__(self, bo_min: float, bo_max: float, factor: float = INCREASE_FACTOR) -> None:
        super().__init__(bo_min, bo_max)
        if factor <= 1.0:
            raise ValueError(f"MILD factor must exceed 1, got {factor!r}")
        self.factor = factor

    def increase(self, value: float) -> float:
        return self.clamp(self.factor * value)

    def decrease(self, value: float) -> float:
        return self.clamp(value - 1.0)


def make_backoff(name: str, bo_min: float, bo_max: float) -> BackoffAlgorithm:
    """Factory keyed by the config string ('beb' or 'mild')."""
    if name == "beb":
        return BinaryExponentialBackoff(bo_min, bo_max)
    if name == "mild":
        return MildBackoff(bo_min, bo_max)
    raise ValueError(f"unknown backoff algorithm {name!r}")


@dataclass
class RemoteEstimate:
    """Per-remote-station bookkeeping (Appendix B.2).

    ``remote`` is our estimate of the remote's congestion (None is the
    paper's I_DONT_KNOW).  ``local`` is the local value bound to the
    in-progress exchange with that station; it synchronizes with
    ``my_backoff`` when an exchange begins and when a handshake completes.
    """

    remote: Optional[float] = None
    local: float = 0.0
    #: Highest exchange sequence number seen FROM this station.
    seen_esn: int = -1
    #: Retries observed in the current incoming exchange.
    recv_retries: int = 0
    #: True after max_retries exhausted against this station; the B.2
    #: give-up rule pins the local value at MAX_BACKOFF until we hear
    #: something fresh from (or about) the station.
    gave_up: bool = False


class BackoffBook:
    """All backoff state for one station.

    The MAC drives it with five events and reads two values:

    * :meth:`begin_attempt` — an RTS is about to go out (binds ``local``).
    * :meth:`on_success` — the exchange completed (ACK, or DATA sent when
      the protocol has no ACK).
    * :meth:`on_timeout` — RTS drew no CTS (and no ACK).
    * :meth:`on_give_up` — retry budget exhausted, packet dropped.
    * :meth:`on_frame_heard` — any clean frame arrived or was overheard.
    * :meth:`contention_backoff` — the BO bound for a slot draw.
    * :meth:`fields_for` — header values to stamp into outgoing frames.
    """

    def __init__(self, config: ProtocolConfig) -> None:
        self.config = config
        self.algorithm = make_backoff(config.backoff, config.bo_min, config.bo_max)
        self.my_backoff: float = config.bo_min
        self._remotes: Dict[str, RemoteEstimate] = {}

    # -------------------------------------------------------------- helpers
    def remote(self, name: str) -> RemoteEstimate:
        """The estimate record for station ``name`` (created on demand)."""
        entry = self._remotes.get(name)
        if entry is None:
            entry = RemoteEstimate(local=self.my_backoff)
            self._remotes[name] = entry
        return entry

    def known_remotes(self) -> Dict[str, RemoteEstimate]:
        return dict(self._remotes)

    # ------------------------------------------------------------ selection
    def contention_backoff(self, dst: Optional[str], retries: int = 0) -> float:
        """Upper bound (in slots) for the uniform contention draw.

        Per-destination mode sums the two ends' estimates (footnote 9 of
        §3.4); an unknown remote contributes nothing.  Multicast and
        RRTS-less draws pass ``dst=None`` and use the plain counter.

        ``retries`` widens the bound transiently (``retries·ALPHA``) so a
        failing exchange paces itself out *without* committing the failure
        to either end's congestion estimate — §3.4: which end failed can
        only be determined once the exchange finally succeeds, and the
        receiver-side rules of B.2 make that adjustment.
        """
        if not self.config.per_destination or dst is None:
            return self.my_backoff
        entry = self.remote(dst)
        combined = entry.local + (entry.remote if entry.remote is not None else 0.0)
        combined += retries * self.config.alpha
        return min(max(combined, self.config.bo_min), 2.0 * self.config.bo_max)

    def fields_for(self, dst: Optional[str]) -> "tuple[float, Optional[float]]":
        """(local_backoff, remote_backoff) header fields for a frame to dst.

        A gave-up entry's MAX_BACKOFF pin paces *our* transmissions to the
        unresponsive station; it is not evidence of congestion at our end,
        so broadcast the ambient value instead of the pin.
        """
        if not self.config.per_destination or dst is None:
            return self.my_backoff, None
        entry = self.remote(dst)
        local = self.my_backoff if entry.gave_up else entry.local
        return local, entry.remote

    # --------------------------------------------------------------- events
    def begin_attempt(self, dst: Optional[str]) -> None:
        """Bind the local value for a fresh exchange: "If packet = RTS:
        local_backoff (used in communicating with Q) = my_backoff".

        A destination we gave up on keeps its MAX_BACKOFF binding (B.2's
        give-up rule) until something fresh is heard from it — otherwise the
        penalty would evaporate at the very next packet.
        """
        if self.config.per_destination and dst is not None:
            entry = self.remote(dst)
            if not entry.gave_up:
                entry.local = self.my_backoff

    def on_success(self, dst: Optional[str]) -> None:
        """The exchange to ``dst`` completed; congestion at both ends was
        evidently survivable, so both estimates relax."""
        self.my_backoff = self.algorithm.decrease(self.my_backoff)
        if self.config.per_destination and dst is not None:
            entry = self.remote(dst)
            entry.gave_up = False
            entry.local = self.my_backoff
            if entry.remote is not None:
                entry.remote = self.algorithm.decrease(entry.remote)

    def on_timeout(self, dst: Optional[str], retry_count: int) -> None:
        """An RTS to ``dst`` drew no reply.

        Single-counter mode applies F_inc to the one counter — the sender's
        only option when one number models everything.  Per-destination
        mode commits **nothing**: the sender cannot yet tell whether the
        RTS or the CTS was lost (§3.4), so the estimates stay and only the
        transient ``retries·ALPHA`` term of :meth:`contention_backoff`
        paces the retransmissions.  The definitive attribution happens in
        :meth:`_copy_received` (the receiver sees a retransmitted RTS ⇒ its
        CTS died ⇒ congestion at the sender's end) and on eventual success
        (fresh header values are copied outright).
        """
        if not self.config.per_destination or dst is None:
            self.my_backoff = self.algorithm.increase(self.my_backoff)

    def on_give_up(self, dst: Optional[str]) -> None:
        """Retry budget exhausted (B.2: local with Q = MAX_BACKOFF,
        Q's backoff = I_DONT_KNOW)."""
        if self.config.per_destination and dst is not None:
            entry = self.remote(dst)
            entry.local = self.config.bo_max
            entry.remote = None
            entry.gave_up = True
        else:
            self.my_backoff = self.algorithm.increase(self.my_backoff)

    # -------------------------------------------------------------- copying
    def on_frame_heard(self, frame: Frame, addressed_to_me: bool) -> None:
        """Apply the copying rules to a cleanly heard frame.

        Overheard (not addressed to us) frames: the simple §3.1 scheme
        copies from *every* heard packet ("Whenever a station hears a
        packet, it copies that value into its own backoff counter") — RTS
        included, which is exactly what re-ignites BEB's contention wars
        after each reset (Table 2).  The per-destination B.2 refinement
        instead ignores RTS frames ("they may not carry the correct backoff
        values"); any other frame from Q to R yields Q's congestion (its
        ``local_backoff`` field), possibly R's (the ``remote_backoff``
        field), and — Q being nearby — our own ambient estimate.

        Frames addressed to us follow the B.2 receive block: a fresh
        exchange (or completed handshake) carries authoritative values; a
        retransmission means a collision happened at Q's end, so Q's
        estimate grows and ours is recovered from the conserved sum.
        """
        if not self.config.copy_backoff or frame.local_backoff is None:
            return
        if not addressed_to_me:
            if frame.kind is FrameType.RTS and self.config.per_destination:
                return
            self._copy_overheard(frame)
        else:
            self._copy_received(frame)

    def _copy_overheard(self, frame: Frame) -> None:
        self.my_backoff = self.algorithm.clamp(frame.local_backoff)
        if self.config.per_destination:
            src_entry = self.remote(frame.src)
            src_entry.remote = self.algorithm.clamp(frame.local_backoff)
            src_entry.gave_up = False  # the station is evidently alive
            if frame.remote_backoff is not None and not frame.is_multicast:
                self.remote(frame.dst).remote = self.algorithm.clamp(frame.remote_backoff)

    def _copy_received(self, frame: Frame) -> None:
        if not self.config.per_destination:
            self.my_backoff = self.algorithm.clamp(frame.local_backoff)
            return
        entry = self.remote(frame.src)
        entry.gave_up = False  # the station is evidently alive
        is_retransmission = frame.retry and frame.esn is not None and frame.esn == entry.seen_esn
        if (
            frame.kind is FrameType.RTS
            and frame.retry
            and not is_retransmission
        ):
            # The first copy of this exchange we see is already a retry:
            # the original RTS died HERE, i.e. there is congestion at the
            # receiver — our — end (§3.4: "If the RTS is not received, we
            # know that there must be congestion at the receiver").  Raise
            # our own estimate; our subsequent headers broadcast it, and
            # everyone sending toward us slows down accordingly.
            self.my_backoff = self.algorithm.clamp(self.my_backoff + self.config.alpha)
        if not is_retransmission:
            # New exchange (or a handshake that finally succeeded): values
            # carried in the packet are correct.  B.2 additionally says
            # "my_backoff = remote_backoff" here (adopt the peer's estimate
            # of us as our own ambient value); we deliberately do NOT — the
            # peer's estimate includes per-stream retry penalties, and
            # echoing those into my_backoff lets one troubled stream's
            # history spread through the copying network as fake ambient
            # congestion that never drains (see DESIGN.md).  The per-stream
            # ``local`` still synchronizes with the peer's view.
            entry.remote = self.algorithm.clamp(frame.local_backoff)
            if frame.remote_backoff is not None:
                entry.local = self.algorithm.clamp(frame.remote_backoff)
            else:
                entry.local = self.my_backoff
            if frame.esn is not None:
                entry.seen_esn = frame.esn
            entry.recv_retries = 1
        else:
            # Retransmission: assume a collision at the sender's end; the
            # sum of the two ends' values is conserved, so our share is the
            # difference (Appendix B.2 receive block, else branch).  B.2
            # scales the penalty by the cumulative retry count; we apply
            # ALPHA once per observed retransmission — cumulative growth
            # (+ALPHA·Σretries per troubled exchange) feeds back through
            # the copying network and never drains (see DESIGN.md).
            total = frame.local_backoff + (
                frame.remote_backoff if frame.remote_backoff is not None else 0.0
            )
            entry.remote = self.algorithm.clamp(
                frame.local_backoff + self.config.alpha
            )
            if frame.remote_backoff is not None:
                entry.local = self.algorithm.clamp(total - entry.remote)
            else:
                entry.local = self.my_backoff
            entry.recv_retries += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackoffBook(my={self.my_backoff:.2f},"
            f" remotes={{{', '.join(f'{k}: {v.remote}' for k, v in self._remotes.items())}}})"
        )
