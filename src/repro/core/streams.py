"""The multiple stream model (§3.2).

A station's original design held one FIFO of packets and one backoff
counter, which allocates bandwidth *per station*: a base station sending to
two pads gets the same share as a pad sending one stream.  The paper's fix
runs "the backoff algorithm independently for each stream, [with] separate
queues for each stream", transmission going to the stream whose retry slot
comes up first.

:class:`StreamQueue` supports both disciplines behind one interface:

* ``multi=False`` — one FIFO; the only transmission candidate is the
  head-of-line packet (whatever its destination).
* ``multi=True`` — one FIFO per destination; every stream's head packet is
  a candidate and the MAC draws a contention delay per candidate.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

_packet_counter = itertools.count(1)


@dataclass
class QueuedPacket:
    """A network-layer packet waiting for the media, plus MAC bookkeeping."""

    payload: Any
    dst: str
    size_bytes: int
    enqueued_at: float
    #: Exchange sequence number, assigned by the MAC when first attempted.
    esn: Optional[int] = None
    #: Number of failed attempts so far.
    retries: int = 0
    uid: int = field(default_factory=lambda: next(_packet_counter))

    @property
    def attempted(self) -> bool:
        return self.esn is not None


class StreamQueue:
    """Packet queue(s) for one station.

    The class never drops silently: callers pop or drop heads explicitly.
    A ``capacity`` bounds each stream's queue (None = unbounded) because
    saturated UDP sources would otherwise grow memory without bound; pushes
    beyond capacity are rejected and counted.
    """

    def __init__(self, multi: bool, capacity: Optional[int] = 64) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity!r}")
        self.multi = multi
        self.capacity = capacity
        # Insertion-ordered so single-FIFO mode and candidate iteration are
        # deterministic.
        self._queues: "OrderedDict[str, Deque[QueuedPacket]]" = OrderedDict()
        #: Pushes rejected because the stream queue was full.
        self.rejected = 0
        #: Total packets ever accepted.
        self.accepted = 0

    # ---------------------------------------------------------------- write
    def push(self, payload: Any, dst: str, size_bytes: int, now: float) -> Optional[QueuedPacket]:
        """Append a packet for ``dst``; returns None when the queue is full."""
        key = dst if self.multi else "_fifo"
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        if self.capacity is not None and len(queue) >= self.capacity:
            self.rejected += 1
            return None
        entry = QueuedPacket(payload=payload, dst=dst, size_bytes=size_bytes, enqueued_at=now)
        queue.append(entry)
        self.accepted += 1
        return entry

    def push_front(self, entry: QueuedPacket) -> None:
        """Reinsert a previously-popped packet at the head of its stream.

        Used by the §4 piggyback-ACK extension when a later CTS reveals
        that an optimistically-completed DATA transmission was lost.
        Front insertion ignores ``capacity`` — the packet already held a
        slot when first accepted.
        """
        key = entry.dst if self.multi else "_fifo"
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        queue.appendleft(entry)

    def pop(self, entry: QueuedPacket) -> None:
        """Remove ``entry`` from its queue.

        Usually the entry is the head of line; it may sit deeper when a §4
        resurrection (piggyback mismatch, NACK) was reinserted in front of
        it mid-exchange.  Removing by identity keeps the invariant that
        every accepted packet leaves the queue exactly once.
        """
        queue = self._queue_of(entry)
        if not queue:
            raise ValueError(f"packet {entry.uid} is not queued")
        try:
            queue.remove(entry)
        except ValueError:
            raise ValueError(f"packet {entry.uid} is not queued") from None
        if not queue:
            key = entry.dst if self.multi else "_fifo"
            del self._queues[key]

    def _queue_of(self, entry: QueuedPacket) -> Optional[Deque[QueuedPacket]]:
        key = entry.dst if self.multi else "_fifo"
        return self._queues.get(key)

    # ----------------------------------------------------------------- read
    def candidates(self) -> List[QueuedPacket]:
        """Head-of-line packets eligible for the next contention round.

        Single-FIFO mode exposes one candidate; multi-stream mode exposes
        one per destination, in stream creation order.
        """
        return [queue[0] for queue in self._queues.values() if queue]

    def head_for(self, dst: str) -> Optional[QueuedPacket]:
        """Head-of-line packet bound for ``dst``, if any is eligible.

        In single-FIFO mode this is the head only when the head targets
        ``dst`` — a later packet for ``dst`` cannot jump the line.
        """
        for queue in self._queues.values():
            if queue and queue[0].dst == dst:
                return queue[0]
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def is_empty(self) -> bool:
        return not self._queues

    def depth_by_stream(self) -> Dict[str, int]:
        """Queue depth per destination (diagnostics)."""
        depths: Dict[str, int] = {}
        for queue in self._queues.values():
            for entry in queue:
                depths[entry.dst] = depths.get(entry.dst, 0) + 1  # repro-lint: allow=REPRO107 (one-shot diagnostic)
        return depths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "multi" if self.multi else "fifo"
        return f"StreamQueue({mode}, len={len(self)}, streams={list(self._queues)})"
