"""Capture and overlay of live simulator state.

The snapshot strategy is **overlay-on-rebuild**: a restore target is a
*fresh* scenario built from an equivalent
:class:`~repro.topo.builder.ScenarioBuilder` (same topology, protocol,
profile and seed).  Restoring then means

1. overlay each registered component's instance ``__dict__`` with the
   captured attributes (identity-preserving: the target's objects stay
   in place, only their state changes),
2. replace the kernel's event queue with an empty backend of the same
   type and re-push the captured live entries under their preserved
   ``(time, priority, seq)`` keys — delivery order derives entirely from
   those keys, so a heap capture restores into a wheel (and vice versa)
   byte-identically,
3. rewind the process-global sequence counters (event ``seq``, packet
   ``uid``) to their captured watermarks,
4. overwrite every RNG substream's bit-generator state,
5. run the post-overlay fix-ups: rebind the kernel's hot-path aliases,
   re-derive each :class:`~repro.sim.timers.Timer`'s cached
   ``_can_resched`` against the *target* backend, clear the medium's
   audibility caches, and reset metrics probes' dwell anchors.

Step 3 makes restore a process-global operation: exactly one restored
simulator can be live at a time (a second concurrent simulator would
draw colliding ``seq`` values).  Capture, by contrast, is a strict
no-op on the running simulator — counters are read with a
consume-then-reseed trick and the queue is inspected read-only — so
capture-then-continue fires the exact event sequence an uninterrupted
run does.

**Deliberately excluded from capture** (fresh wiring is kept instead):
mac-level observer callbacks (``probe``, ``on_deliver``, ``on_drop``,
``on_sent``), recorder/injector notification hooks, the kernel's
observer, medium audibility caches (pure functions of restored links),
and the metrics sampler's ring buffers (only its position round-trips —
a warm-started run's time series begins at the branch point).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Tuple

from repro.core import streams as core_streams
from repro.sim import events as events_mod
from repro.sim.timers import Timer
from repro.snapshot.registry import SnapshotError, SnapshotRegistry

__all__ = ["capture_state", "restore_state", "scenario_policies",
           "FULL", "INCLUDE"]

#: Capture everything in ``vars(obj)`` minus the listed fields.
FULL = "full"
#: Capture only the listed fields.
INCLUDE = "include"

#: token -> (mode, fields)
Policy = Tuple[str, Tuple[str, ...]]

_MAC_EXCLUDE = ("probe", "on_deliver", "on_drop", "on_sent")
_MEDIUM_EXCLUDE = ("_audible_cache", "_audible_from", "_power_cache")
_SCENARIO_EXCLUDE = ("metrics", "conformance", "warm_start_info",
                     "report_digest")


def scenario_policies(scenario: Any,
                      builder: Any = None) -> Dict[str, Policy]:
    """The canonical component-capture map for a built scenario.

    Must produce identical token sets on the capture and restore sides;
    every key is derived from builder-assigned names.
    """
    policies: Dict[str, Policy] = {
        "trace": (FULL, ()),
        "medium": (FULL, _MEDIUM_EXCLUDE),
        "recorder": (FULL, ("on_record",)),
        "scenario": (FULL, _SCENARIO_EXCLUDE),
    }
    for name, station in scenario.stations.items():
        policies[f"station:{name}"] = (FULL, ())
        policies[f"mac:{name}"] = (FULL, _MAC_EXCLUDE)
        if getattr(station, "dispatcher", None) is not None:
            policies[f"dispatcher:{name}"] = (FULL, ())
    for stream_id, stream in scenario.streams.items():
        policies[f"stream:{stream_id}"] = (FULL, ())
        if getattr(stream, "source", None) is not None:
            policies[f"source:{stream_id}"] = (FULL, ())
    if scenario.fault_injector is not None:
        policies["injector"] = (FULL, ("on_recovery",))
    metrics = getattr(scenario, "metrics", None)
    if metrics is not None and getattr(metrics, "sampler", None) is not None:
        policies["sampler"] = (INCLUDE, ("_base", "_ticks", "samples_taken"))
    if builder is not None:
        for index in range(len(getattr(builder, "_noise", ()))):
            policies[f"noise:{index}"] = (FULL, ())
    return policies


# ------------------------------------------------------------------ capture
def _consume_then_reseed(module: Any, attr: str) -> int:
    """Read a module-global ``itertools.count`` without perturbing it.

    ``next()`` is the only read a count supports; re-seeding a fresh
    count at the consumed value makes the pair a net no-op, so a
    captured run continues exactly as an uncaptured one would.
    """
    current = next(getattr(module, attr))
    setattr(module, attr, itertools.count(current))
    return current


def capture_state(sim: Any, registry: SnapshotRegistry,
                  policies: Dict[str, Policy]) -> Dict[str, Any]:
    """Snapshot the simulator into a picklable payload dict.

    Strictly read-only with respect to future behavior: the queue is
    inspected via :meth:`live_entries` and the global counters via the
    consume-then-reseed trick.
    """
    if sim._running:
        raise SnapshotError("cannot capture while the kernel is "
                            "dispatching; capture between run() calls "
                            "or from a scheduled event boundary")
    entries = sim._queue.live_entries()
    rng_states = {
        name: sim.streams._streams[name].bit_generator.state
        for name in sorted(sim.streams._streams)
    }
    components: Dict[str, Dict[str, Any]] = {}
    for token in sorted(policies):
        mode, fields = policies[token]
        obj = registry.resolve(token)
        # Sorted keys make the payload canonical: a restored object's
        # attribute insertion order differs from the original's (fresh
        # build order + overlay), and recapture-equals-capture is the
        # fixed point the store digest keys on.
        state = dict(sorted(vars(obj).items()))
        if mode == FULL:
            for field in fields:
                state.pop(field, None)
        else:
            state = {field: state[field] for field in fields
                     if field in state}
        components[token] = state
    return {
        "now": sim._now,
        "events_fired": sim.events_fired,
        "queue": sim.queue_name,
        "seq": _consume_then_reseed(events_mod, "_sequence"),
        "packet_uid": _consume_then_reseed(core_streams, "_packet_counter"),
        "entries": entries,
        "rng": {"seed": sim.streams.seed, "states": rng_states},
        "components": components,
    }


# ------------------------------------------------------------------ restore
def _fresh_queue(old: Any) -> Any:
    """An empty backend of the same type (and width) as ``old``."""
    width = getattr(old, "bucket_width", None)
    return type(old)() if width is None else type(old)(width)


def restore_state(sim: Any, registry: SnapshotRegistry,
                  payload: Dict[str, Any],
                  policies: Dict[str, Policy]) -> None:
    """Overlay a captured payload onto a freshly built target."""
    if sim._running:
        raise SnapshotError("cannot restore into a running kernel")
    captured = payload["components"]
    missing = sorted(set(policies) - set(captured))
    extra = sorted(set(captured) - set(policies))
    if missing or extra:
        raise SnapshotError(
            "snapshot and restore target disagree on components "
            f"(missing={missing!r}, extra={extra!r}) — the target must "
            "be built from an equivalent builder")

    # 1. Component overlay.  For FULL components the captured dict *is*
    # the state: attributes the fresh build grew that the capture lacks
    # (lazily created fields) are removed, excluded fields keep their
    # fresh wiring.
    for token in sorted(policies):
        mode, fields = policies[token]
        obj = registry.resolve(token)
        state = captured[token]
        if mode == FULL:
            for key in [k for k in vars(obj)
                        if k not in state and k not in fields]:
                delattr(obj, key)
            vars(obj).update(state)
        else:
            for field, value in state.items():
                setattr(obj, field, value)

    # 2. Kernel: swap in an empty queue of the target's backend type and
    # re-push the captured entries under their preserved keys.  The old
    # queue (holding the fresh build's now-superseded events) is dropped
    # wholesale.
    queue = _fresh_queue(sim._queue)
    sim._free = []
    queue.pool = sim._free
    for time, priority, seq, handle in payload["entries"]:
        queue.push(time, priority, seq, handle)
    sim._queue = queue
    sim._push = queue.push
    sim._pop = queue.pop_next
    sim._note_cancelled = queue.note_cancelled
    sim.can_reschedule = queue.supports_reschedule
    sim._now = payload["now"]  # repro-lint: allow=REPRO104 (clock restore, not a callback)
    sim.events_fired = payload["events_fired"]
    sim._running = False
    sim._stopped = False

    # 3. Process-global counters rewind to the captured watermarks.
    # This is what makes restore one-live-simulator-per-process.
    events_mod._sequence = itertools.count(payload["seq"])
    core_streams._packet_counter = itertools.count(payload["packet_uid"])

    # 4. RNG substreams.
    streams = sim.streams
    for name, state in payload["rng"]["states"].items():
        streams.get(name).bit_generator.state = state

    # 5. Fix-ups.
    _fix_timers(sim, registry, payload, policies)
    if "medium" in registry:
        medium = registry.resolve("medium")
        medium._audible_cache.clear()
        medium._audible_from.clear()
        if hasattr(medium, "_power_cache"):
            medium._power_cache.clear()
        medium._port_index = {port: index
                              for index, port in enumerate(medium._ports)}
    if "scenario" in registry:
        scenario = registry.resolve("scenario")
        if getattr(scenario, "metrics", None) is not None:
            for station in scenario.stations.values():
                probe = getattr(station.mac, "probe", None)
                if probe is not None:
                    probe._entered = sim._now


def _fix_timers(sim: Any, registry: SnapshotRegistry,
                payload: Dict[str, Any],
                policies: Dict[str, Policy]) -> None:
    """Re-derive every restored Timer's cached backend capability.

    ``Timer.__init__`` snapshots ``sim.can_reschedule``; a cross-backend
    restore (heap capture -> wheel target, or vice versa) would leave
    restored timers keyed to the *source* backend.  Timers live as
    direct component attributes (or inside their shallow containers) and
    as ``__self__`` of pending ``_expire`` callbacks — both are scanned.
    """
    can = sim.can_reschedule

    def fix(value: Any) -> None:
        if isinstance(value, Timer):
            value._can_resched = can

    for token in policies:
        for value in vars(registry.resolve(token)).values():
            fix(value)
            if isinstance(value, (list, tuple)):
                for item in value:
                    fix(item)
            elif isinstance(value, dict):
                for item in value.values():
                    fix(item)
    for entry in payload["entries"]:
        owner = getattr(entry[3].callback, "__self__", None)
        if owner is not None:
            fix(owner)
