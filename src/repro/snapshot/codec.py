"""The snapshot pickle codec: persistent refs + deterministic bytes.

Raw :mod:`pickle` cannot round-trip a live simulator — pending callbacks
are bound methods of long-lived objects, and naive pickling would deep
copy the whole object graph into the blob (then restore disconnected
clones).  The codec fixes both problems and one more:

* **Registered objects** (``sim``, ``medium``, each MAC, ...) serialize
  as persistent IDs ``("obj", token)`` resolved against the restore
  target's :class:`~repro.snapshot.registry.SnapshotRegistry`.
* **Bound methods** whose ``__self__`` is registered serialize as
  ``("method", owner_token, func_name)`` and resolve via ``getattr`` —
  this is the stable callback descriptor the event entries rely on.
* **Sets** are re-encoded in sorted order so the blob bytes — and hence
  :attr:`Snapshot.digest` — are identical across processes regardless of
  hash randomization.

Everything else (frozen dataclasses, packets, timers, transmissions,
plain containers) pickles by value; pickle's memo preserves identity
sharing *within* one snapshot document, which the restore path depends
on (e.g. a :class:`~repro.phy.medium.Transmission` shared between the
medium's active set and a pending ``_finish`` event arrives as one
object, not two).

This module is the only sanctioned pickle surface for simulator state;
lint rule REPRO114 keeps ad-hoc ``pickle`` use out of the rest of the
stack.
"""

from __future__ import annotations

import io
import pickle
import types
from typing import Any, Tuple

from repro.snapshot.registry import SnapshotError, SnapshotRegistry

__all__ = ["dumps", "loads", "PROTOCOL"]

#: Fixed protocol (not HIGHEST_PROTOCOL): blob bytes must not depend on
#: the interpreter minor version beyond what the code itself does.
PROTOCOL = 4


def _set_key(item: Any) -> Tuple[int, str]:
    """Deterministic sort key for set members.

    Named objects (MACs, stations) sort by name — their default repr
    embeds a memory address, which would leak nondeterminism into the
    blob.  Everything else a simulator set holds (ints, strings, string
    tuples) has a stable repr.
    """
    name = getattr(item, "name", None)
    if isinstance(name, str) and type(item).__module__ != "builtins":
        return (0, name)
    return (1, repr(item))


class SnapshotPickler(pickle._Pickler):
    # The *pure-Python* pickler, deliberately: the C accelerator
    # dispatches exact set/frozenset before consulting
    # ``reducer_override``, so the deterministic re-encoding below would
    # silently never run and blob bytes would follow hash-iteration
    # (address) order.  Snapshot capture is rare; the speed gap is noise.
    def __init__(self, file: io.BytesIO, registry: SnapshotRegistry) -> None:
        super().__init__(file, protocol=PROTOCOL)
        self._registry = registry

    def persistent_id(self, obj: Any) -> Any:
        if isinstance(obj, types.MethodType):
            owner = self._registry.token_for(obj.__self__)
            if owner is not None:
                return ("method", owner, obj.__func__.__name__)
            return None
        token = self._registry.token_for(obj)
        if token is not None:
            return ("obj", token)
        return None

    def reducer_override(self, obj: Any) -> Any:
        cls = type(obj)
        if cls is set:
            return (set, (sorted(obj, key=_set_key),))
        if cls is frozenset:
            return (frozenset, (sorted(obj, key=_set_key),))
        return NotImplemented

    def memoize(self, obj: Any) -> None:
        # Never memo-share strings/bytes: whether two equal strings are
        # one object depends on interning (compile-time constants, kwargs
        # keys), which a restore round-trip does not preserve — memo hits
        # would then differ between a capture and its recapture, breaking
        # blob-byte determinism.  Repeats are written inline instead.
        if type(obj) in (str, bytes):
            return
        super().memoize(obj)


class SnapshotUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, registry: SnapshotRegistry) -> None:
        super().__init__(file)
        self._registry = registry

    def persistent_load(self, pid: Any) -> Any:
        kind = pid[0]
        if kind == "obj":
            return self._registry.resolve(pid[1])
        if kind == "method":
            owner = self._registry.resolve(pid[1])
            try:
                return getattr(owner, pid[2])
            except AttributeError:
                raise SnapshotError(
                    f"callback descriptor {pid[1]}.{pid[2]} does not "
                    "resolve on the restore target") from None
        raise SnapshotError(f"unknown persistent id kind {kind!r}")


def dumps(payload: Any, registry: SnapshotRegistry) -> bytes:
    buffer = io.BytesIO()
    SnapshotPickler(buffer, registry).dump(payload)
    return buffer.getvalue()


def loads(blob: bytes, registry: SnapshotRegistry) -> Any:
    return SnapshotUnpickler(io.BytesIO(blob), registry).load()
