"""Stable-token registry: the identity layer of the snapshot codec.

A snapshot must round-trip *references* to long-lived simulator objects
(the kernel, the medium, each MAC, each stream) without serializing the
objects themselves — a pending event's callback is a bound method of one
of them, and on restore it has to resolve to the *target* scenario's
instance, not a deep copy.  The registry assigns each such object a
stable string token; the codec writes tokens into the pickle stream as
persistent IDs and the load side resolves them against a registry built
over the restore target.

Tokens are deterministic functions of the scenario topology (station
names, stream ids, noise-model position in the builder), so a registry
built over a fresh build of the same :class:`~repro.topo.builder.
ScenarioBuilder` resolves every token a capture of an equivalent
scenario emitted.  Objects that are *not* registered serialize by value
(frozen dataclasses, packets, timers, transmissions); pickle's memo
keeps identity sharing within one snapshot document.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = ["SnapshotRegistry", "SnapshotError"]


class SnapshotError(RuntimeError):
    """A capture, save, load or restore could not be completed."""


class SnapshotRegistry:
    """Bidirectional object <-> token map for one simulator instance."""

    def __init__(self) -> None:
        self._by_token: Dict[str, Any] = {}
        self._by_id: Dict[int, str] = {}
        self._streams = None  # RandomStreams for dynamic rng:<name> tokens

    # ---------------------------------------------------------- registration
    def register(self, token: str, obj: Any) -> None:
        if token in self._by_token and self._by_token[token] is not obj:
            raise SnapshotError(f"token {token!r} already registered "
                                "to a different object")
        self._by_token[token] = obj
        self._by_id[id(obj)] = token

    def bind_streams(self, streams: Any) -> None:
        """Attach a :class:`~repro.sim.rng.RandomStreams` for rng tokens.

        Numpy generators are cached by traffic sources and the fault
        injector; rather than enumerating them up front, any generator
        owned by ``streams`` maps to ``rng:<name>`` on capture and
        resolves through ``streams.get(name)`` on restore (which lazily
        re-derives the substream, whose state the kernel section of the
        snapshot then overwrites).
        """
        self._streams = streams
        self._refresh_rng_tokens()

    def _refresh_rng_tokens(self) -> None:
        if self._streams is None:
            return
        for name, gen in self._streams._streams.items():
            self._by_id[id(gen)] = f"rng:{name}"

    # ------------------------------------------------------------ resolution
    def token_for(self, obj: Any) -> Optional[str]:
        token = self._by_id.get(id(obj))
        if token is None and self._streams is not None:
            # A substream may have been derived since the last refresh.
            self._refresh_rng_tokens()
            token = self._by_id.get(id(obj))
        return token

    def resolve(self, token: str) -> Any:
        if token.startswith("rng:"):
            if self._streams is None:
                raise SnapshotError(
                    f"cannot resolve {token!r}: no RandomStreams bound")
            return self._streams.get(token[4:])
        try:
            return self._by_token[token]
        except KeyError:
            raise SnapshotError(
                f"snapshot references {token!r} but the restore target "
                "does not define it — was the scenario built from an "
                "equivalent builder?") from None

    def tokens(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._by_token.items())

    def __contains__(self, token: str) -> bool:
        return token in self._by_token


def registry_for_scenario(scenario: Any,
                          builder: Any = None) -> SnapshotRegistry:
    """Build the canonical registry for a built scenario.

    The token scheme must be identical on the capture and restore sides;
    everything is keyed by names the builder assigns deterministically.
    """
    reg = SnapshotRegistry()
    sim = scenario.sim
    reg.register("sim", sim)
    reg.register("trace", sim.trace)
    reg.register("medium", scenario.medium)
    reg.register("recorder", scenario.recorder)
    reg.register("scenario", scenario)
    for name, station in scenario.stations.items():
        reg.register(f"station:{name}", station)
        reg.register(f"mac:{name}", station.mac)
        dispatcher = getattr(station, "dispatcher", None)
        if dispatcher is not None:
            reg.register(f"dispatcher:{name}", dispatcher)
    for stream_id, stream in scenario.streams.items():
        reg.register(f"stream:{stream_id}", stream)
        source = getattr(stream, "source", None)
        if source is not None:
            reg.register(f"source:{stream_id}", source)
    if scenario.fault_injector is not None:
        reg.register("injector", scenario.fault_injector)
    metrics = getattr(scenario, "metrics", None)
    if metrics is not None:
        sampler = getattr(metrics, "sampler", None)
        if sampler is not None:
            reg.register("sampler", sampler)
    if builder is not None:
        for index, model in enumerate(getattr(builder, "_noise", ())):
            reg.register(f"noise:{index}", model)
        for index, (_, action) in enumerate(getattr(builder, "_events", ())):
            reg.register(f"builder_event:{index}", action)
    reg.bind_streams(sim.streams)
    return reg
