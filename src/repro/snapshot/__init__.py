"""Deterministic checkpoint/restore and branch-fork for the simulator.

The subsystem turns one warmed-up simulation into many: capture the
complete simulator state at ``t=T`` (kernel clock + pending events,
either queue backend, every RNG substream, MAC state machines and
timers, in-flight transmissions, flow/TCP state, fault processes,
sampler position), save it as a versioned ``*.snap`` file, and restore
it into a freshly built equivalent scenario — on either backend — such
that running to the horizon is **byte-identical** (``events_fired`` and
``Trace.digest()``) to never having stopped.

Entry points:

* :class:`Snapshot` — ``capture`` / ``restore`` / ``save`` / ``load``.
* :func:`fork` — branch a snapshot into divergent futures (re-seeded
  substreams, restricted knob swaps).
* :func:`apply_warm_start` — the keyed-store hook
  :meth:`ScenarioBuilder.build` calls when the profile carries a
  :class:`~repro.core.config.WarmStart`; sweeps reach it through
  ``run_cells(warm_start=...)`` or the CLI's ``--warm-start``.

See DESIGN.md §11 for the callback-descriptor registry, the versioning
policy, and the deliberate exclusions.
"""

from repro.snapshot.fork import FORKABLE_KNOBS, fork
from repro.snapshot.registry import (SnapshotError, SnapshotRegistry,
                                     registry_for_scenario)
from repro.snapshot.snapshot import FORMAT_VERSION, MAGIC, Snapshot
from repro.snapshot.state import (capture_state, restore_state,
                                  scenario_policies)
from repro.snapshot.warmstart import apply_warm_start, store_digest, warm_key

__all__ = [
    "FORKABLE_KNOBS",
    "FORMAT_VERSION",
    "MAGIC",
    "Snapshot",
    "SnapshotError",
    "SnapshotRegistry",
    "apply_warm_start",
    "capture_state",
    "fork",
    "registry_for_scenario",
    "restore_state",
    "scenario_policies",
    "store_digest",
    "warm_key",
]
