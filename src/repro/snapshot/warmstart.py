"""Warm-start plumbing: keyed snapshot stores for sweep fan-out.

A sweep cell asking for ``warm_start=WarmStart(at=T, store=DIR)`` gets
its scenario through this module: the builder's canonical spec, the
physics profile digest, the capture time and the code version hash into
a store key; a hit restores the snapshot into the fresh build, a miss
runs the warm-up once, captures, and saves (atomically, so concurrent
pool workers racing on the same key both land a complete file and
``os.replace`` makes last-writer-wins safe).

The key deliberately excludes the store *path* — two stores holding
snapshots of the same keyed build hold byte-identical snapshots — and
includes :func:`~repro.runner.cache.code_version`, so any source change
invalidates every stored snapshot the same way it invalidates the
result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.snapshot.snapshot import FORMAT_VERSION, Snapshot

__all__ = ["apply_warm_start", "warm_key", "store_digest"]


def _canon(value: Any) -> Any:
    """Canonical JSON-able form of a builder spec fragment.

    Hash-randomization-proof (sets are sorted) and address-proof
    (objects render as type name + sorted attributes; callables as their
    name only — scripted ``at()`` actions are identified by position and
    fire time, not by code identity, which is as strong a key as a
    source hash short of disassembly and is documented as such).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dc__": type(value).__name__,
                **{f.name: _canon(getattr(value, f.name))
                   for f in dataclasses.fields(value)}}
    if isinstance(value, dict):
        return {str(k): _canon(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canon(v) for v in value), key=repr)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if callable(value):
        return f"<callable:{getattr(value, '__name__', '?')}>"
    return {"__obj__": type(value).__name__,
            **{k: _canon(v) for k, v in sorted(vars(value).items())}}


def warm_key(builder: Any, at: float, traced: bool = False) -> str:
    """Deterministic store key for (builder spec, physics profile, T).

    ``traced`` is the *effective* trace enablement of the build (the
    profile knob, the sanitizer and ambient digest collection all force
    it): a traced warm-up carries the t<T records a digest or sanitizer
    replay needs, an untraced one does not, so the two must never share
    a snapshot.  The raw ``trace`` profile knob is stripped from the
    key's profile digest for the same reason — only the effective flag
    matters, so a store pre-warmed with ``trace=True`` serves sweeps
    whose tracing comes from ``--digest`` or ``REPRO_SANITIZE``.
    """
    from repro.runner.cache import code_version  # lazy: avoid layer cycle

    spec = {key: value for key, value in vars(builder).items()
            if key != "profile"}
    blob = json.dumps({
        "builder": _canon(spec),
        "profile": builder.profile.but(warm_start=None,
                                       trace=False).digest(),
        "traced": bool(traced),
        "at": float(at),
        "code": code_version(),
        "format": FORMAT_VERSION,
    }, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def apply_warm_start(scenario: Any, builder: Any, warm: Any) -> None:
    """Land ``scenario`` at ``warm.at`` via the store, warming it on miss.

    Called by :meth:`ScenarioBuilder.build` as its final step when the
    profile carries a :class:`~repro.core.config.WarmStart`.  Either
    branch leaves the scenario at ``sim.now == warm.at`` with state
    byte-identical to an uninterrupted run (the restore-equals-
    straight-through invariant the test matrix enforces).
    """
    store = Path(warm.store)
    key = warm_key(builder, warm.at, traced=scenario.sim.trace.enabled)
    path = store / f"{key}.snap"
    if path.exists():
        snapshot = Snapshot.load(path)
        snapshot.restore(scenario, builder)
        restored = True
    else:
        scenario.sim.run(until=warm.at)
        snapshot = Snapshot.capture(scenario, builder)
        snapshot.save(path)
        restored = False
    scenario.warm_start_info = {
        "key": key,
        "path": str(path),
        "restored": restored,
        "digest": snapshot.digest,
        "at": warm.at,
        "events_at_branch": scenario.sim.events_fired,
    }


def store_digest(store: Union[str, Path]) -> Optional[str]:
    """Content digest over a snapshot store, or None when empty/absent.

    Folded into :class:`~repro.core.config.WarmStart` (and hence the
    profile digest and the result-cache key) by the CLI, so results
    warm-started from different snapshot contents can never share a
    cache entry.
    """
    store = Path(store)
    if not store.is_dir():
        return None
    names = sorted(p.name for p in store.glob("*.snap"))
    if not names:
        return None
    acc = hashlib.sha256()
    for name in names:
        acc.update(name.encode("utf-8"))
        acc.update(hashlib.sha256((store / name).read_bytes()).digest())
    return acc.hexdigest()
