"""Branch-fork: N divergent futures from one warmed-up snapshot.

A fork builds a fresh scenario from (a clone of) the original builder,
restores the snapshot into it, then perturbs exactly the state the
caller names: designated RNG substreams are re-seeded from a
salt-derived :class:`~numpy.random.SeedSequence`, and a restricted set
of *non-physics* profile knobs may be swapped.  Physics knobs (timing,
bitrate, topology, faults) are deliberately rejected — changing them
would make the captured in-flight state (transmissions mid-air, armed
timeouts) physically inconsistent with the world it restores into.
Branch points that vary physics should snapshot before the divergence
is *installed*, i.e. vary the builder and warm-start each variant
separately.
"""

from __future__ import annotations

import copy
import zlib
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.snapshot.registry import SnapshotError
from repro.snapshot.snapshot import Snapshot

__all__ = ["fork", "FORKABLE_KNOBS"]

#: Profile fields a fork may swap at the branch point.  Everything else
#: changes the physics the captured state was produced under.
FORKABLE_KNOBS = frozenset({"queue", "trace", "sanitize", "metrics"})

#: Domain-separation constant so fork re-seeds can never collide with
#: RandomStreams' own (seed, crc32(name)) derivation.
_FORK_DOMAIN = 0xF0BB


def fork(snapshot: Snapshot, builder: Any, *, salt: int = 0,
         streams: Sequence[str] = (),
         profile_changes: Optional[Dict[str, Any]] = None) -> Any:
    """Build a scenario branched from ``snapshot`` at its capture point.

    Parameters
    ----------
    snapshot:
        A capture of a scenario built from ``builder`` (or an equivalent
        builder — same topology, protocol, seed and physics profile).
    builder:
        The originating :class:`~repro.topo.builder.ScenarioBuilder`.
        It is shallow-cloned; the original is untouched.
    salt:
        Branch discriminator folded into every re-seed.  Two forks with
        the same salt are byte-identical; different salts diverge on the
        named ``streams``.
    streams:
        RNG substream names (``"traffic:f0"``, ``"mac:B"``,
        ``"fault:gilbert_elliott:main"``, ...) to re-seed at the branch
        point.  Unnamed streams continue their captured sequences.
    profile_changes:
        Optional knob swaps, restricted to :data:`FORKABLE_KNOBS`.
    """
    changes = dict(profile_changes or {})
    bad = sorted(set(changes) - FORKABLE_KNOBS)
    if bad:
        raise SnapshotError(
            f"fork cannot change physics knobs {bad!r}; forkable knobs "
            f"are {sorted(FORKABLE_KNOBS)!r} — vary the builder and "
            "warm-start separately instead")
    clone = copy.copy(builder)
    clone.profile = builder.profile.but(warm_start=None, **changes)
    scenario = clone.build()
    fresh_trace_enabled = scenario.sim.trace.enabled
    snapshot.restore(scenario, clone)
    # The fork's trace knob wins over the captured flag: enabling tracing
    # at the branch point yields a trace that starts at the fork (the
    # warm-up was captured untraced and cannot be invented after the
    # fact).
    scenario.sim.trace.enabled = fresh_trace_enabled
    seed = scenario.sim.streams.seed
    for name in streams:
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=(seed, key, _FORK_DOMAIN, salt))  # repro-lint: allow=REPRO101 (derives the replacement stream)
        fresh = np.random.default_rng(seq)  # repro-lint: allow=REPRO101 (state donor only)
        gen = scenario.sim.streams.get(name)
        gen.bit_generator.state = fresh.bit_generator.state
    scenario.warm_start_info = {
        "forked": True,
        "salt": salt,
        "reseeded": tuple(streams),
        "digest": snapshot.digest,
        "at": snapshot.at,
    }
    return scenario
