"""The :class:`Snapshot` container: capture, restore, save, load.

File format (``*.snap``)::

    MAGIC (8 bytes)  |  header length (u32 LE)  |  JSON header  |  blob

The JSON header carries the format version, the capture metadata
(backend, seed, clock, events fired) and the SHA-256 of the blob; load
verifies magic, version and digest before touching the pickle.  The
builder is *not* embedded — a snapshot restores only into a scenario
built from an equivalent :class:`~repro.topo.builder.ScenarioBuilder`,
which is what the warm-start store key guarantees (and what
:func:`~repro.snapshot.fork.fork` arranges explicitly).

Versioning policy: ``FORMAT_VERSION`` bumps whenever the payload schema
or the component policy tables change shape; loading a *newer* format
than the running code understands raises.  Older formats have no
migration path — snapshots are cheap to regenerate and the warm-start
key already folds in :func:`~repro.runner.cache.code_version`, so stale
files simply miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.snapshot import codec
from repro.snapshot.registry import (SnapshotError, SnapshotRegistry,
                                     registry_for_scenario)
from repro.snapshot.state import (capture_state, restore_state,
                                  scenario_policies)

__all__ = ["Snapshot", "FORMAT_VERSION", "MAGIC"]

FORMAT_VERSION = 1
MAGIC = b"MACAWSNP"


class Snapshot:
    """One captured simulator state: metadata + codec blob."""

    def __init__(self, meta: Dict[str, Any], blob: bytes) -> None:
        self.meta = meta
        self.blob = blob

    @property
    def digest(self) -> str:
        """SHA-256 of the blob — deterministic for a deterministic run."""
        return hashlib.sha256(self.blob).hexdigest()

    @property
    def at(self) -> float:
        return float(self.meta["now"])

    # ------------------------------------------------------------ scenarios
    @classmethod
    def capture(cls, scenario: Any, builder: Any = None) -> "Snapshot":
        """Capture a built (possibly mid-run) scenario.

        Pass the ``builder`` that produced the scenario whenever one
        exists: builder-owned noise models and scripted ``at()`` actions
        are then serialized as stable references instead of copies.
        """
        registry = registry_for_scenario(scenario, builder)
        policies = scenario_policies(scenario, builder)
        return cls._capture(scenario.sim, registry, policies)

    def restore(self, scenario: Any, builder: Any = None) -> None:
        """Overlay this snapshot onto a freshly built equivalent scenario."""
        registry = registry_for_scenario(scenario, builder)
        policies = scenario_policies(scenario, builder)
        self._restore(scenario.sim, registry, policies)

    # ------------------------------------------------- bare kernels (tests)
    @classmethod
    def capture_sim(cls, sim: Any, registry: SnapshotRegistry,
                    policies: Optional[Dict[str, Any]] = None) -> "Snapshot":
        """Capture a hand-built simulator (no scenario scaffolding).

        ``registry`` must at minimum register ``"sim"``; ``policies``
        lists extra registered components whose state should round-trip
        (see :func:`~repro.snapshot.state.scenario_policies` for the
        shape).
        """
        return cls._capture(sim, registry, policies or {})

    def restore_sim(self, sim: Any, registry: SnapshotRegistry,
                    policies: Optional[Dict[str, Any]] = None) -> None:
        self._restore(sim, registry, policies or {})

    @classmethod
    def _capture(cls, sim: Any, registry: SnapshotRegistry,
                 policies: Dict[str, Any]) -> "Snapshot":
        payload = capture_state(sim, registry, policies)
        blob = codec.dumps(payload, registry)
        meta = {
            "format": FORMAT_VERSION,
            "queue": payload["queue"],
            "seed": payload["rng"]["seed"],
            "now": payload["now"],
            "events_fired": payload["events_fired"],
            "pending": len(payload["entries"]),
        }
        return cls(meta, blob)

    def _restore(self, sim: Any, registry: SnapshotRegistry,
                 policies: Dict[str, Any]) -> None:
        if int(self.meta.get("format", 0)) > FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format {self.meta.get('format')} is newer than "
                f"this code understands (<= {FORMAT_VERSION})")
        payload = codec.loads(self.blob, registry)
        restore_state(sim, registry, payload, policies)

    # -------------------------------------------------------------- file IO
    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write ``MAGIC | header | blob`` to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({**self.meta, "digest": self.digest},
                            sort_keys=True).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(MAGIC)
                fh.write(struct.pack("<I", len(header)))
                fh.write(header)
                fh.write(self.blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        path = Path(path)
        raw = path.read_bytes()
        if raw[:len(MAGIC)] != MAGIC:
            raise SnapshotError(f"{path} is not a snapshot file")
        offset = len(MAGIC)
        (header_len,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        try:
            meta = json.loads(raw[offset:offset + header_len])
        except ValueError:
            raise SnapshotError(f"{path}: corrupt snapshot header") from None
        blob = raw[offset + header_len:]
        expected = meta.pop("digest", None)
        if expected is not None:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != expected:
                raise SnapshotError(
                    f"{path}: blob digest mismatch (file corrupt or "
                    "truncated)")
        if int(meta.get("format", 0)) > FORMAT_VERSION:
            raise SnapshotError(
                f"{path}: snapshot format {meta.get('format')} is newer "
                f"than this code understands (<= {FORMAT_VERSION})")
        return cls(meta, blob)
