"""Delivery dispatch and throughput recording.

Every station's MAC delivers network packets through a
:class:`Dispatcher`, which routes them to the transport endpoint that owns
the packet's stream (TCP receivers, TCP senders for ACKs) and mirrors every
delivery into the scenario-wide :class:`FlowRecorder`.

The recorder is what the experiment harness reads: for UDP streams a
delivery at the MAC *is* the throughput event; TCP endpoints instead report
in-order application-level deliveries to the recorder explicitly (MAC-level
arrivals of TCP segments are retransmission-polluted and are recorded
separately as raw arrivals).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.mac.base import BaseMac
from repro.net.packets import NetPacket


@dataclass
class FlowRecord:
    """Delivery log of one stream: time, bytes, and end-to-end delay."""

    times: List[float] = field(default_factory=list)
    bytes: List[int] = field(default_factory=list)
    #: Seconds from packet creation to delivery (NaN when unknown).
    delays: List[float] = field(default_factory=list)

    def add(self, time: float, size: int, delay: float = float("nan")) -> None:
        self.times.append(time)
        self.bytes.append(size)
        self.delays.append(delay)

    def delays_between(self, start: float, end: float) -> List[float]:
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return [d for d in self.delays[lo:hi] if d == d]  # drop NaN

    def count_between(self, start: float, end: float, *,
                      include_end: bool = False) -> int:
        """Deliveries with start <= time < end (times are appended in order).

        ``include_end=True`` makes the upper bound inclusive — the final
        bin of a time series needs it because ``Simulator.run(until)``
        fires delivery events at exactly ``until`` (the horizon is
        inclusive), so packets landing on the boundary belong to the run.
        """
        lo = bisect.bisect_left(self.times, start)
        hi = (bisect.bisect_right if include_end else bisect.bisect_left)(
            self.times, end)
        return hi - lo

    def bytes_between(self, start: float, end: float) -> int:
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return sum(self.bytes[lo:hi])


class FlowRecorder:
    """Scenario-wide registry of per-stream delivery logs."""

    def __init__(self) -> None:
        self._flows: Dict[str, FlowRecord] = {}
        #: Optional observability tap (:mod:`repro.obs`): called as
        #: ``on_record(stream, time, size_bytes, delay)`` for every
        #: delivery.  Passive — it must not mutate simulation state.
        self.on_record: Optional[Callable[[str, float, int, float], None]] = None

    def record(self, stream: str, time: float, size_bytes: int,
               created: Optional[float] = None) -> None:
        flow = self._flows.get(stream)
        if flow is None:
            flow = FlowRecord()
            self._flows[stream] = flow
        delay = (time - created) if created is not None else float("nan")
        flow.add(time, size_bytes, delay)
        if self.on_record is not None:
            self.on_record(stream, time, size_bytes, delay)

    def flow(self, stream: str) -> FlowRecord:
        """The record for ``stream`` (empty if nothing delivered yet)."""
        return self._flows.get(stream, FlowRecord())

    def streams(self) -> List[str]:
        return sorted(self._flows)

    def throughput_pps(self, stream: str, start: float, end: float) -> float:
        """Delivered packets per second over [start, end)."""
        if end <= start:
            raise ValueError(f"need end > start, got [{start!r}, {end!r})")
        return self.flow(stream).count_between(start, end) / (end - start)

    def throughput_bps(self, stream: str, start: float, end: float) -> float:
        """Delivered bits per second over [start, end)."""
        if end <= start:
            raise ValueError(f"need end > start, got [{start!r}, {end!r})")
        return self.flow(stream).bytes_between(start, end) * 8 / (end - start)


class Dispatcher:
    """Routes a MAC's upstream deliveries to per-stream handlers.

    UDP streams rely on the default behaviour (record the delivery);
    TCP endpoints register a handler for their stream and take over
    recording themselves.
    """

    def __init__(self, mac: BaseMac, recorder: Optional[FlowRecorder] = None) -> None:
        self.mac = mac
        self.recorder = recorder
        self._handlers: Dict[str, Callable[[NetPacket, str], None]] = {}
        #: Packets that arrived with no registered handler and no recorder.
        self.unclaimed = 0
        mac.on_deliver = self._on_deliver

    def register(self, stream: str, handler: Callable[[NetPacket, str], None]) -> None:
        """Attach ``handler(packet, src_mac_name)`` for ``stream``."""
        if stream in self._handlers:
            raise ValueError(f"stream {stream!r} already has a handler on {self.mac.name}")
        self._handlers[stream] = handler

    def _on_deliver(self, packet: NetPacket, src: str) -> None:
        handler = self._handlers.get(packet.stream)
        if handler is not None:
            handler(packet, src)
            return
        if self.recorder is not None:
            self.recorder.record(
                packet.stream, self.mac.sim.now, packet.size_bytes,
                created=packet.created,
            )
        else:
            self.unclaimed += 1
