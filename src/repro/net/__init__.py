"""Network substrate: packets, traffic generation, UDP and TCP transports.

The paper's workloads are constant-rate streams over UDP (§3.1–§3.3) and
TCP (§3.3.1's ACK experiment and the office scenario of §3.5).  This
package provides:

* :mod:`repro.net.packets` — the network-layer packet carried in DATA
  frames;
* :mod:`repro.net.traffic` — CBR, Poisson and on/off sources;
* :mod:`repro.net.sink` — per-station delivery dispatch and the global
  flow recorder experiments read throughput from;
* :mod:`repro.net.udp` — fire-and-forget streams;
* :mod:`repro.net.tcp` — a compact Tahoe-style TCP whose loss recovery is
  bounded below by the 0.5 s minimum RTO the paper leans on.
"""

from repro.net.packets import NetPacket, DATA_PACKET_BYTES, TCP_ACK_BYTES
from repro.net.traffic import CbrSource, PoissonSource, OnOffSource
from repro.net.sink import Dispatcher, FlowRecorder
from repro.net.udp import UdpStream
from repro.net.tcp import TcpStream, TcpConfig

__all__ = [
    "NetPacket",
    "DATA_PACKET_BYTES",
    "TCP_ACK_BYTES",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "Dispatcher",
    "FlowRecorder",
    "UdpStream",
    "TcpStream",
    "TcpConfig",
]
