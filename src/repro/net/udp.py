"""UDP streams: constant-rate fire-and-forget traffic.

A :class:`UdpStream` wires a traffic source to the sender's MAC queue and
lets the receiver-side :class:`~repro.net.sink.Dispatcher` record
deliveries.  There is no transport-level reliability: when the MAC drops a
packet (queue overflow or retry exhaustion) the packet is simply lost —
exactly the semantics the paper's UDP experiments rely on.
"""

from __future__ import annotations

from typing import Optional

from repro.mac.base import BaseMac
from repro.net.packets import DATA_PACKET_BYTES, NetPacket
from repro.net.traffic import CbrSource, PoissonSource
from repro.sim.kernel import Simulator


class UdpStream:
    """One unidirectional UDP stream between two MACs.

    Parameters
    ----------
    stream_id:
        Name used in results, e.g. ``"P1-B"``.
    rate_pps:
        Application generation rate.
    packet_bytes:
        Wire size of each packet (512 in the paper).
    arrival:
        ``"cbr"`` (default, the paper's workload) or ``"poisson"``.
    """

    def __init__(
        self,
        sim: Simulator,
        src_mac: BaseMac,
        dst_mac: BaseMac,
        stream_id: str,
        rate_pps: float,
        packet_bytes: int = DATA_PACKET_BYTES,
        start: float = 0.0,
        stop: Optional[float] = None,
        arrival: str = "cbr",
    ) -> None:
        self.sim = sim
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.stream_id = stream_id
        self.packet_bytes = packet_bytes
        #: Packets handed to the MAC / rejected by the MAC queue.
        self.offered = 0
        self.rejected = 0
        if arrival == "cbr":
            self.source = CbrSource(
                sim, self._emit, rate_pps, start=start, stop=stop, name=stream_id
            )
        elif arrival == "poisson":
            self.source = PoissonSource(
                sim, self._emit, rate_pps, start=start, stop=stop, name=stream_id
            )
        else:
            raise ValueError(f"unknown arrival process {arrival!r}")

    def _emit(self, index: int) -> None:
        packet = NetPacket(
            stream=self.stream_id,
            kind="udp",
            seq=index,
            size_bytes=self.packet_bytes,
            created=self.sim.now,
        )
        self.offered += 1
        if not self.src_mac.enqueue(packet, self.dst_mac.name, self.packet_bytes):
            self.rejected += 1

    def halt(self) -> None:
        """Stop generating new packets (queued ones still drain)."""
        self.source.halt()

    def counters(self) -> dict:
        """Probe surface for :mod:`repro.obs`: cumulative load counters."""
        return {"offered": self.offered, "rejected": self.rejected}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UdpStream({self.stream_id}, offered={self.offered})"
