"""Network-layer packets.

A :class:`NetPacket` is what MAC DATA frames carry.  The paper's data
packets are 512 bytes on the wire; our TCP acknowledgements are 40-byte
packets (an IP+TCP header with no payload) that traverse the same MAC
exchange as any other packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Wire size of the paper's data packets (§3: "All data packets are 512 bytes").
DATA_PACKET_BYTES = 512

#: Wire size of a TCP pure acknowledgement.
TCP_ACK_BYTES = 40

_packet_ids = itertools.count(1)


@dataclass
class NetPacket:
    """One network-layer packet.

    Attributes
    ----------
    stream:
        Application stream identifier, e.g. ``"P1-B"`` — matches the row
        labels of the paper's tables.
    kind:
        ``"udp"``, ``"tcp_data"`` or ``"tcp_ack"``.
    seq:
        Transport sequence number (TCP) or generation index (UDP).
    ack:
        Cumulative acknowledgement number (``tcp_ack`` only).
    size_bytes:
        Wire size, which the MAC uses for airtime.
    created:
        Simulated time the packet entered the transport layer.
    """

    stream: str
    kind: str
    seq: int
    size_bytes: int
    created: float
    ack: Optional[int] = None
    #: True when TCP retransmitted this packet (Karn's rule needs to know).
    retransmitted: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes!r}")
        if self.kind not in ("udp", "tcp_data", "tcp_ack"):
            raise ValueError(f"unknown packet kind {self.kind!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetPacket({self.stream}, {self.kind}, seq={self.seq}, {self.size_bytes}B)"
