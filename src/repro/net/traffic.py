"""Traffic sources.

The paper's devices "generate data at a constant rate of either 32 or 64
packets per second" (§3); :class:`CbrSource` reproduces that.  Poisson and
on/off sources are provided for robustness and ablation experiments beyond
the paper's workloads.

A source does not know about transports: it invokes a callback once per
generated packet index, and the transport (UDP stream, TCP connection)
turns that into packets.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Simulator


class TrafficSource:
    """Base: schedules ``emit(index)`` calls between ``start`` and ``stop``."""

    def __init__(
        self,
        sim: Simulator,
        emit: Callable[[int], None],
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "source",
    ) -> None:
        if stop is not None and stop < start:
            raise ValueError(f"stop {stop!r} precedes start {start!r}")
        self.sim = sim
        self.emit = emit
        self.start = start
        self.stop = stop
        self.name = name
        self.generated = 0
        self._stopped = False

    def halt(self) -> None:
        """Stop generating (pending emissions are skipped)."""
        self._stopped = True

    def _active(self, time: float) -> bool:
        if self._stopped:
            return False
        return self.stop is None or time < self.stop

    def _fire(self) -> None:
        if not self._active(self.sim.now):
            return
        index = self.generated
        self.generated += 1
        self.emit(index)
        self._schedule_next()

    def _schedule_next(self) -> None:
        raise NotImplementedError


class CbrSource(TrafficSource):
    """Constant bit rate: one packet every 1/rate seconds.

    ``phase`` offsets the first packet inside the first interval so that
    multiple same-rate sources do not all fire at the same instants (the
    paper's pads are not clock-synchronized).  By default the phase is
    drawn from the source's random stream.
    """

    def __init__(
        self,
        sim: Simulator,
        emit: Callable[[int], None],
        rate_pps: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "cbr",
        phase: Optional[float] = None,
    ) -> None:
        super().__init__(sim, emit, start, stop, name)
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps!r}")
        self.interval = 1.0 / rate_pps
        if phase is None:
            phase = float(sim.streams.get(f"traffic:{name}").random()) * self.interval
        self._first = start + phase
        sim.at(max(self._first, sim.now), self._fire)

    def _schedule_next(self) -> None:
        self.sim.schedule(self.interval, self._fire)


class PoissonSource(TrafficSource):
    """Poisson arrivals with the given mean rate."""

    def __init__(
        self,
        sim: Simulator,
        emit: Callable[[int], None],
        rate_pps: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "poisson",
    ) -> None:
        super().__init__(sim, emit, start, stop, name)
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps!r}")
        self.rate = rate_pps
        self._rng = sim.streams.get(f"traffic:{name}")
        sim.at(max(start, sim.now) + self._gap(), self._fire)

    def _gap(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate))

    def _schedule_next(self) -> None:
        self.sim.schedule(self._gap(), self._fire)


class OnOffSource(TrafficSource):
    """CBR bursts separated by silences (exponential on/off periods).

    Models the bursty interactive traffic of mobile devices; used in
    robustness tests rather than in any reproduced table.
    """

    def __init__(
        self,
        sim: Simulator,
        emit: Callable[[int], None],
        rate_pps: float,
        mean_on_s: float,
        mean_off_s: float,
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "onoff",
    ) -> None:
        super().__init__(sim, emit, start, stop, name)
        if rate_pps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("rate and on/off means must be positive")
        self.interval = 1.0 / rate_pps
        self.mean_on = mean_on_s
        self.mean_off = mean_off_s
        self._rng = sim.streams.get(f"traffic:{name}")
        self._burst_end = start
        sim.at(max(start, sim.now), self._begin_burst)

    def _begin_burst(self) -> None:
        if not self._active(self.sim.now):
            return
        self._burst_end = self.sim.now + float(self._rng.exponential(self.mean_on))
        self._fire()

    def _schedule_next(self) -> None:
        next_time = self.sim.now + self.interval
        if next_time <= self._burst_end:
            self.sim.at(next_time, self._fire)
        else:
            gap = float(self._rng.exponential(self.mean_off))
            self.sim.at(self._burst_end + gap, self._begin_burst)
