"""A compact Tahoe-style TCP.

The paper's argument for link-layer ACKs (§3.3.1) hinges on one property of
transport recovery: "many current TCP implementations have a minimum
timeout period of 0.5 sec", so every loss that reaches TCP costs at least
half a second.  This implementation preserves exactly the machinery that
matters for that argument:

* cumulative ACKs, one per received segment (40-byte packets that traverse
  the MAC like any other packet — they consume real channel time);
* Jacobson RTT estimation with a 0.5 s *minimum* RTO and exponential RTO
  backoff with Karn's rule;
* slow start and congestion avoidance (Tahoe: timeout → cwnd = 1).

Deliberate simplifications (documented in DESIGN.md): no fast retransmit /
dup-ACK recovery — on a one-hop wireless link losses manifest as gaps that
the paper's 1994-era TCPs recovered via timeout, which is precisely the
behaviour Table 4 measures — and no delayed ACKs, matching the
per-segment-ACK budget implied by the paper's Table 4 throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.packets import DATA_PACKET_BYTES, NetPacket, TCP_ACK_BYTES
from repro.net.sink import Dispatcher, FlowRecorder
from repro.net.traffic import CbrSource
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


@dataclass(frozen=True)
class TcpConfig:
    """Transport parameters."""

    segment_bytes: int = DATA_PACKET_BYTES
    ack_bytes: int = TCP_ACK_BYTES
    #: The constant the paper's §3.3.1 argument rests on.
    min_rto_s: float = 0.5
    initial_rto_s: float = 1.0
    max_rto_s: float = 64.0
    initial_ssthresh: int = 16
    #: Window cap, in segments.  8 × 512 B = the 4 KB socket buffers of
    #: 1994-era BSD stacks; also keeps queueing RTT well under min_rto.
    max_window: int = 8
    #: Application send-buffer bound, in segments.
    send_buffer: int = 256
    #: Delayed-ACK policy (4.3BSD): acknowledge every Nth in-order segment
    #: immediately; otherwise hold the ACK for ``delayed_ack_s``.
    #: Out-of-order segments are always acknowledged immediately.
    ack_every: int = 2
    delayed_ack_s: float = 0.2

    def __post_init__(self) -> None:
        if self.min_rto_s <= 0 or self.initial_rto_s < self.min_rto_s:
            raise ValueError("need 0 < min_rto <= initial_rto")
        if self.max_window < 1 or self.send_buffer < 1:
            raise ValueError("window and buffer must be >= 1")
        if self.ack_every < 1 or self.delayed_ack_s < 0:
            raise ValueError("need ack_every >= 1 and delayed_ack_s >= 0")


class TcpStream:
    """One unidirectional TCP connection carrying CBR application data.

    The sender side lives at ``src``, the receiver at ``dst``; ACKs flow
    back through the MAC as 40-byte packets on the stream
    ``"<stream_id>:ack"``.  In-order application deliveries are recorded in
    ``recorder`` under ``stream_id`` — these are the pps the paper's TCP
    tables report.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Dispatcher,
        dst: Dispatcher,
        stream_id: str,
        rate_pps: float,
        recorder: Optional[FlowRecorder] = None,
        config: TcpConfig = TcpConfig(),
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.stream_id = stream_id
        self.config = config
        self.recorder = recorder if recorder is not None else dst.recorder

        # ---------------------------------------------------- sender state
        #: Segments the application has produced.
        self.app_generated = 0
        #: App segments discarded because the send buffer was full.
        self.app_overflow = 0
        self.snd_una = 0  # oldest unacknowledged sequence number
        self.snd_next = 0  # next sequence number to transmit
        self.cwnd = 1.0
        self.ssthresh = float(config.initial_ssthresh)
        self.rto = config.initial_rto_s
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._sent_at: Dict[int, float] = {}
        self._retransmitted: Dict[int, bool] = {}
        self.timeouts = 0
        self.retransmissions = 0
        self._rto_timer = Timer(sim, self._on_rto, name=f"tcp:{stream_id}:rto")

        # -------------------------------------------------- receiver state
        self.rcv_next = 0
        self._reorder: Dict[int, NetPacket] = {}
        self.delivered_in_order = 0
        self.acks_sent = 0
        self._unacked_segments = 0
        self._delack_timer = Timer(sim, self._flush_ack, name=f"tcp:{stream_id}:delack")

        src.register(f"{stream_id}:ack", self._on_ack)
        dst.register(stream_id, self._on_segment)
        self.source = CbrSource(
            sim, self._on_app_data, rate_pps, start=start, stop=stop, name=stream_id
        )

    def counters(self) -> dict:
        """Probe surface for :mod:`repro.obs`: cumulative transport counters."""
        return {
            "offered": self.app_generated,
            "rejected": self.app_overflow,
            "rto_events": self.timeouts,
            "retransmissions": self.retransmissions,
            "delivered_in_order": self.delivered_in_order,
            "acks_sent": self.acks_sent,
        }

    # ============================================================= sender
    def _on_app_data(self, index: int) -> None:
        if self.app_generated - self.snd_una >= self.config.send_buffer:
            self.app_overflow += 1
            return
        self.app_generated += 1
        self._try_send()

    def _window(self) -> int:
        return min(int(self.cwnd), self.config.max_window)

    def _try_send(self) -> None:
        """Transmit while the window and send buffer allow."""
        while (
            self.snd_next < self.app_generated
            and self.snd_next - self.snd_una < self._window()
        ):
            self._transmit(self.snd_next, retransmit=False)
            self.snd_next += 1
        if self.snd_una < self.snd_next and not self._rto_timer.running:
            self._rto_timer.start(self.rto)

    def _transmit(self, seq: int, retransmit: bool) -> None:
        packet = NetPacket(
            stream=self.stream_id,
            kind="tcp_data",
            seq=seq,
            size_bytes=self.config.segment_bytes,
            created=self.sim.now,
            retransmitted=retransmit,
        )
        if retransmit:
            self.retransmissions += 1
            self._retransmitted[seq] = True
        else:
            self._sent_at[seq] = self.sim.now
            self._retransmitted.setdefault(seq, False)
        # A full MAC queue is just another loss; the RTO recovers it.
        self.src.mac.enqueue(packet, self.dst.mac.name, packet.size_bytes)

    def _on_ack(self, packet: NetPacket, src_name: str) -> None:
        assert packet.ack is not None
        if packet.ack <= self.snd_una:
            return  # duplicate or stale cumulative ACK
        newly_acked = packet.ack - self.snd_una
        for seq in range(self.snd_una, packet.ack):
            sent = self._sent_at.pop(seq, None)
            was_retx = self._retransmitted.pop(seq, False)
            # Karn's rule: never sample RTT from a retransmitted segment.
            if sent is not None and not was_retx:
                self._sample_rtt(self.sim.now - sent)
        self.snd_una = packet.ack
        # New data acknowledged: clear the exponential RTO backoff (BSD
        # resets its backoff shift whenever snd_una advances).  Without
        # this, a burst of losses compounds the timer into multi-second
        # stalls — one doubling per lost segment.
        if self._srtt is not None:
            self.rto = min(
                max(self.config.min_rto_s, self._srtt + 4 * self._rttvar),
                self.config.max_rto_s,
            )
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, float(self.config.max_window))
        if self.snd_una == self.snd_next:
            self._rto_timer.stop()
        else:
            self._rto_timer.start(self.rto)
        self._try_send()

    def _sample_rtt(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self.rto = max(self.config.min_rto_s, self._srtt + 4 * self._rttvar)
        self.rto = min(self.rto, self.config.max_rto_s)

    def _on_rto(self) -> None:
        if self.snd_una == self.snd_next:
            return
        self.timeouts += 1
        flight = self.snd_next - self.snd_una
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self.rto = min(self.rto * 2.0, self.config.max_rto_s)  # backoff (Karn)
        self._transmit(self.snd_una, retransmit=True)
        self._rto_timer.start(self.rto)

    # ============================================================ receiver
    def _on_segment(self, packet: NetPacket, src_name: str) -> None:
        if packet.seq == self.rcv_next:
            self._deliver(packet)
            while self.rcv_next in self._reorder:
                self._deliver(self._reorder.pop(self.rcv_next))
            self._unacked_segments += 1
            if self._unacked_segments >= self.config.ack_every:
                self._flush_ack()
            else:
                # Delayed ACK (4.3BSD): hold the ACK briefly in case the
                # next segment lets us acknowledge two at once.
                if not self._delack_timer.running:
                    self._delack_timer.start(self.config.delayed_ack_s)
        else:
            # Out-of-order or duplicate: ACK immediately so the sender
            # resynchronizes without waiting out the delayed-ACK timer.
            if packet.seq > self.rcv_next:
                self._reorder[packet.seq] = packet
            self._flush_ack()

    def _flush_ack(self) -> None:
        self._delack_timer.stop()
        self._unacked_segments = 0
        self._send_ack()

    def _deliver(self, packet: NetPacket) -> None:
        self.rcv_next = packet.seq + 1
        self.delivered_in_order += 1
        if self.recorder is not None:
            self.recorder.record(
                self.stream_id, self.sim.now, packet.size_bytes,
                created=packet.created,
            )

    def _send_ack(self) -> None:
        ack = NetPacket(
            stream=f"{self.stream_id}:ack",
            kind="tcp_ack",
            seq=self.acks_sent,
            size_bytes=self.config.ack_bytes,
            created=self.sim.now,
            ack=self.rcv_next,
        )
        self.acks_sent += 1
        self.dst.mac.enqueue(ack, self.src.mac.name, ack.size_bytes)

    # ============================================================== misc
    def halt(self) -> None:
        """Stop the application source (in-flight data still completes)."""
        self.source.halt()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TcpStream({self.stream_id}, una={self.snd_una}, next={self.snd_next},"
            f" cwnd={self.cwnd:.1f}, rto={self.rto:.2f}s)"
        )
