"""The consolidated public API: one import for scenarios, runs and sweeps.

Everything a user script needs lives here, curated::

    from repro.api import ScenarioBuilder, RunProfile, run, sweep

    # One experiment, one seed:
    result = run("table2", seed=1)
    print(result.render())

    # A durable, resumable multi-seed campaign:
    job = sweep(["table2", "table9"], seeds=[0, 1, 2], jobs=4)
    print(job.status, job.digest_set())

    # Sequential stopping: add seeds until the CI is tight enough.
    job = sweep("table2", policy=AdaptiveSeeds(epsilon=5.0))

The facade is a *stable* surface over the layered internals: scenario
construction (:class:`ScenarioBuilder`, :class:`Scenario`, the canned
paper topologies in :mod:`figures <repro.topo.figures>`), configuration
(:class:`RunProfile` and the protocol config constructors), the
experiment registry (:func:`load_experiment`, :func:`run`), the sweep
service (:func:`sweep`, :class:`Job`, the seed policies) and the
analysis helpers the examples plot with.  Deeper imports
(``repro.topo.builder``, ``repro.runner`` …) keep working, but new code
should start here.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.analysis import (
    ComparisonTable,
    channel_utilization,
    format_table,
    jain_fairness,
    throughput_timeseries,
)
from repro.core import MacawMac, ProtocolConfig
from repro.core.config import (
    RunProfile,
    WarmStart,
    active_profile,
    maca_config,
    macaw_config,
)
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import experiment_ids, get_experiment
from repro.fault import FaultSchedule
from repro.mac import CsmaConfig, MacTiming
from repro.runner import Cell, CellResult, ResultCache, expand_cells, run_cells
from repro.service.job import DEFAULT_JOB_DIR, Job, JobSpec
from repro.service.orchestrator import run_job
from repro.service.policy import AdaptiveSeeds, FixedSeeds, SeedPolicy
from repro.snapshot import Snapshot, fork
from repro.topo import Scenario, ScenarioBuilder, Station
from repro.topo import figures

__all__ = [
    "AdaptiveSeeds",
    "Cell",
    "CellResult",
    "ComparisonTable",
    "CsmaConfig",
    "Experiment",
    "ExperimentResult",
    "FaultSchedule",
    "FixedSeeds",
    "Job",
    "JobSpec",
    "MacTiming",
    "MacawMac",
    "ProtocolConfig",
    "ResultCache",
    "RunProfile",
    "Scenario",
    "ScenarioBuilder",
    "SeedPolicy",
    "Snapshot",
    "Station",
    "WarmStart",
    "active_profile",
    "channel_utilization",
    "expand_cells",
    "experiment_ids",
    "figures",
    "fork",
    "format_table",
    "jain_fairness",
    "load_experiment",
    "maca_config",
    "macaw_config",
    "run",
    "run_cells",
    "sweep",
    "throughput_timeseries",
]


def load_experiment(experiment: Union[str, Experiment]) -> Experiment:
    """The registered experiment driver for an id (``"table2"``, …).

    Passing an :class:`Experiment` instance returns it unchanged, so
    call sites can accept either form.
    """
    if isinstance(experiment, Experiment):
        return experiment
    return get_experiment(experiment)


def run(
    experiment: Union[str, Experiment],
    seed: int = 0,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    profile: Optional[RunProfile] = None,
    collect_digest: bool = False,
) -> ExperimentResult:
    """Run one experiment once and return its :class:`ExperimentResult`.

    The inline single-cell spelling: durations default to the driver's
    laptop-friendly bounds, ``profile`` defaults to the ambient
    :func:`active_profile`.  For multi-seed or multi-experiment
    campaigns — with caching, resume and parallelism — use
    :func:`sweep`.
    """
    return load_experiment(experiment).run(
        seed=seed, duration=duration, warmup=warmup,
        collect_digest=collect_digest, profile=profile,
    )


def sweep(
    experiments: Union[str, Iterable[str]],
    seeds: Union[int, Sequence[int], None] = None,
    policy: Optional[SeedPolicy] = None,
    profile: Optional[RunProfile] = None,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    jobs: int = 1,
    job_dir: Any = DEFAULT_JOB_DIR,
    cache: Optional[ResultCache] = None,
    collect_digests: bool = True,
    on_event: Any = None,
) -> Job:
    """Run a durable experiment × seed campaign; return the :class:`Job`.

    The sweep is journaled under ``job_dir/<job_id>/``: re-invoking with
    an identical spec (or ``macaw-sim sweep --resume <job_id>``) replays
    completed cells from the journal and result cache — byte-identically
    — and continues where the previous invocation stopped.

    Parameters
    ----------
    experiments:
        One experiment id or an iterable of them.
    seeds:
        Fixed allocation: an explicit seed list, or an int N meaning
        seeds ``0..N-1``.  Mutually exclusive with ``policy``; when both
        are omitted the sweep runs seeds ``0..2``.
    policy:
        A :class:`SeedPolicy` — notably :class:`AdaptiveSeeds`, the
        sequential stopping rule that keeps adding seeds per experiment
        until the target metric's confidence interval is tighter than
        ``epsilon`` (or a hard cap is hit).
    profile:
        The :class:`RunProfile` every cell runs under; None adopts the
        ambient profile.
    duration, warmup:
        Run bounds; None uses each driver's defaults.
    jobs:
        Worker processes (1 = inline).  Purely a speed knob: the digest
        set is identical at any value.
    job_dir, cache:
        Where the job journal and the result cache live.
    collect_digests:
        Capture per-cell trace digests (the resume-equality contract).
    on_event:
        Optional ``(kind, payload)`` progress callback.
    """
    if policy is not None and seeds is not None:
        raise ValueError("pass either seeds or policy, not both")
    if policy is None:
        if seeds is None:
            seeds = 3
        if isinstance(seeds, int):
            seeds = range(seeds)
        policy = FixedSeeds(seeds=tuple(seeds))
    if isinstance(experiments, str):
        experiments = (experiments,)
    spec = JobSpec(
        experiments=tuple(experiments),
        policy=policy,
        profile=profile if profile is not None else RunProfile.current(),
        duration=duration,
        warmup=warmup,
        collect_digests=collect_digests,
    )
    return run_job(spec, jobs=jobs, job_dir=job_dir, cache=cache,
                   on_event=on_event)
