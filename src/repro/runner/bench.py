"""Engine micro-benchmarks with a committed JSON baseline.

Measures the simulator machinery itself — bare kernel event throughput,
a cancel-dominated timer workload, and three saturated MACAW cells —
across every registered event-queue backend, and compares events/sec
against the committed ``benchmarks/BENCH_engine.json``:

* ``python -m repro.runner.bench`` runs the benches on one backend
  (``--queue``, default heap) and prints a table;
* ``--write`` refreshes the baseline in place (run on a quiet machine):
  every registered backend gets its own section under ``backends``, and
  the heap numbers are mirrored into the legacy ``benchmarks`` block;
* ``--check`` re-runs the matrix and fails (exit 1) when any bench on
  any backend falls more than ``tolerance`` (default 25%) below its own
  committed section — the CI regression gate.  The benches run with
  metrics off, so ``--check`` is also the metrics-off overhead gate.
* ``--overhead`` times the six-pad cell with metrics off vs. on
  (1 s cadence) and verifies both runs fire identical event counts —
  the determinism contract measured, not assumed.
* ``--warm-start`` times the six-pad cell cold vs. restored from a
  mid-run checkpoint (``repro.snapshot``) and verifies both agree on the
  horizon event count; ``--write`` folds the numbers into the baseline's
  ``warm_start`` section, which is informational — never gated.
* ``--sweep`` runs Table 2 through the service orchestrator once with a
  fixed 8-seed allocation and once under adaptive (CI-driven) stopping,
  reporting the cells and wall time the adaptive policy saved;
  ``--write`` folds the numbers into the baseline's ``sweep`` section —
  informational, never gated.
* ``--profile FILE`` runs the single-backend table under cProfile and
  dumps the stats to FILE (inspect with ``python -m pstats FILE``).

Each bench row keeps the *best* wall time (least interrupted — the
number the events/sec figure and the gate use) and the *median* across
repeats (robust to one noisy neighbour; a large best/median gap flags an
unquiet machine, not a code change).

The baseline file also keeps a frozen ``pre_pr`` section: the numbers the
engine produced before the first performance PR, kept so the speedup
claim stays auditable.  ``--write`` never touches it.

Wall-clock timing here is intentional and exempt from the determinism
lint (REPRO102): benches measure the host, not the simulation.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator
from repro.sim.queues import queue_names
from repro.sim.timers import Timer

#: Relative events/sec drop that fails ``--check`` (0.25 = 25% slower).
DEFAULT_TOLERANCE = 0.25

#: Timed repeats per bench; the best (least-interrupted) run is kept.
DEFAULT_REPEATS = 3

_BASELINE_NAME = "BENCH_engine.json"


def default_baseline_path() -> Path:
    """``benchmarks/BENCH_engine.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / _BASELINE_NAME


# --------------------------------------------------------------------- benches

def _bench_kernel_chain(queue: Optional[str] = None) -> int:
    """Schedule-and-fire cost of the bare event loop (50k chained events)."""
    sim = Simulator(queue=queue)

    def chain(n: int) -> None:
        if n:
            sim.schedule(0.001, chain, n - 1)

    chain(50_000)
    sim.run()
    return sim.events_fired


def _bench_timer_cancel(queue: Optional[str] = None) -> int:
    """Cancel-dominated churn: 10k far-horizon timers rearmed 40 times.

    The MACAW-shaped worst case for a heap: nearly every operation is a
    rearm of a live far-future timer, so the pending set stays large
    while dead entries pile up and every push pays a full-depth sift.
    A wheel backend turns each rearm into an O(1) bucket append.  Fired
    events are deliberately scarce — the returned count is the number of
    *rearm operations*, which both backends perform identically.
    """
    sim = Simulator(queue=queue)
    timers = [Timer(sim, lambda: None) for _ in range(10_000)]
    ops = 0

    def rearm_round(rounds: int) -> None:
        nonlocal ops
        for index, timer in enumerate(timers):
            timer.start(5.0 + (index % 7) * 0.9)
        ops += len(timers)
        if rounds:
            sim.schedule(0.05, rearm_round, rounds - 1)

    rearm_round(40)
    sim.run(until=3.0)  # horizon before any expiry: pure rearm traffic
    return ops


def _bench_single_stream(queue: Optional[str] = None) -> int:
    """One saturated MACAW stream, 100 s simulated."""
    from repro.topo.figures import single_stream_cell

    builder = single_stream_cell(protocol="macaw", seed=1)
    builder.queue = queue
    return builder.build().run(100.0).sim.events_fired


def _bench_six_pad(queue: Optional[str] = None) -> int:
    """The contended six-pad MACAW cell of Figure 3, 100 s simulated."""
    from repro.topo.figures import fig3_six_pads

    builder = fig3_six_pads(protocol="macaw", seed=1)
    builder.queue = queue
    return builder.build().run(100.0).sim.events_fired


def _bench_office_cell(queue: Optional[str] = None) -> int:
    """The large office cell of Figure 11 (Table 11 topology), 60 s simulated."""
    from repro.topo.figures import fig11_office

    builder = fig11_office(protocol="macaw", seed=1)
    builder.queue = queue
    return builder.build().run(60.0).sim.events_fired


BENCHES: List[Tuple[str, Callable[[Optional[str]], int]]] = [
    ("kernel_chain", _bench_kernel_chain),
    ("timer_cancel", _bench_timer_cancel),
    ("single_stream_cell", _bench_single_stream),
    ("six_pad_cell", _bench_six_pad),
    ("office_cell", _bench_office_cell),
]


def _timed_rows(
    runs: List[Tuple[str, Callable[[], int]]], repeats: int
) -> Dict[str, Dict[str, float]]:
    """Run each labelled thunk ``repeats`` times; best + median wall per row."""
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in runs:
        walls: List[float] = []
        events = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter()  # repro-lint: allow=REPRO102 (bench)
            events = fn()
            walls.append(time.perf_counter() - started)  # repro-lint: allow=REPRO102
        best = min(walls)
        results[name] = {
            "events": events,
            "wall_s": round(best, 4),
            "median_s": round(statistics.median(walls), 4),
            "events_per_sec": round(events / best, 1),
        }
    return results


def run_benches(
    repeats: int = DEFAULT_REPEATS, queue: Optional[str] = None
) -> Dict[str, Dict[str, float]]:
    """Run every bench on one backend; keep each bench's best wall time."""
    return _timed_rows(
        [(name, lambda fn=fn: fn(queue)) for name, fn in BENCHES], repeats
    )


def run_bench_matrix(
    repeats: int = DEFAULT_REPEATS, backends: Optional[List[str]] = None
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """The full benches × backends grid (default: every registered backend)."""
    names = backends if backends is not None else queue_names()
    return {name: run_benches(repeats=repeats, queue=name) for name in names}


def measure_metrics_overhead(repeats: int = DEFAULT_REPEATS) -> Dict[str, Dict[str, float]]:
    """Six-pad cell with metrics off vs. on (1 s cadence), best-of-repeats.

    Raises RuntimeError if the two runs fire different event counts —
    instrumentation must be invisible to the event stream.
    """
    from repro.topo.figures import fig3_six_pads

    def run(metrics: object) -> int:
        builder = fig3_six_pads(protocol="macaw", seed=1)
        builder.metrics = metrics
        return builder.build().run(100.0).sim.events_fired

    results = _timed_rows(
        [
            ("metrics_off", lambda: run(False)),
            ("metrics_on", lambda: run(1.0)),
        ],
        repeats,
    )
    if results["metrics_off"]["events"] != results["metrics_on"]["events"]:
        raise RuntimeError(
            "metrics instrumentation changed the event stream: "
            f"{results['metrics_off']['events']:.0f} events off vs "
            f"{results['metrics_on']['events']:.0f} on"
        )
    return results


def measure_warm_start(
    repeats: int = DEFAULT_REPEATS, at: float = 50.0, horizon: float = 100.0
) -> Dict[str, Dict[str, float]]:
    """Cold vs snapshot-warm-started six-pad runs, best-of-repeats.

    ``cold`` simulates the full [0, horizon]; ``warm`` restores the
    checkpoint at ``at`` from a per-call store (the store is primed once,
    unmeasured) and simulates only [at, horizon].  Because restore is
    byte-identical to running through, ``events`` reports the events each
    run actually *fired in-process* — the warm row's reduction is the
    whole speedup.  Raises RuntimeError if the two runs disagree on the
    total event count at the horizon (the restore invariant, measured).
    Informational only: the ``--check`` gate never walks this section.
    """
    import tempfile

    from repro.core.config import WarmStart
    from repro.topo.figures import fig3_six_pads

    totals: Dict[str, int] = {}

    def run(warm: Optional[WarmStart], label: str) -> int:
        builder = fig3_six_pads(protocol="macaw", seed=1)
        if warm is not None:
            builder.profile = builder.profile.but(warm_start=warm)
        scenario = builder.build().run(horizon)
        totals[label] = scenario.sim.events_fired
        skipped = 0
        info = scenario.warm_start_info
        if info is not None and info.get("restored"):
            skipped = int(info["events_at_branch"])
        return scenario.sim.events_fired - skipped

    with tempfile.TemporaryDirectory() as store:
        warm = WarmStart(at=at, store=store)
        run(warm, "prime")  # populate the store; first build pays the warm-up
        results = _timed_rows(
            [
                ("cold_run", lambda: run(None, "cold")),
                ("warm_start_run", lambda: run(warm, "warm")),
            ],
            repeats,
        )
    if totals["cold"] != totals["warm"]:
        raise RuntimeError(
            "warm-started run diverged from cold run: "
            f"{totals['cold']} events at the horizon vs {totals['warm']}"
        )
    return results


def measure_sweep_savings(
    exp_id: str = "table2",
    fixed_seeds: int = 8,
    epsilon: float = 2.0,
    min_seeds: int = 3,
    duration: float = 40.0,
    warmup: float = 5.0,
) -> Dict[str, Dict[str, float]]:
    """Adaptive (CI-driven) seed allocation vs a fixed sweep, measured.

    Runs ``exp_id`` twice through the service orchestrator into
    throwaway job dirs with cold caches: once with a fixed
    ``fixed_seeds``-seed allocation, once under sequential stopping
    (:class:`~repro.service.policy.AdaptiveSeeds`, same cap).  Reports
    cells executed and wall time per strategy — the cells the adaptive
    policy *didn't* run are the point.  Informational only: the
    ``--check`` gate never walks this section, and the stop point is a
    property of the experiment's seed noise, not of engine speed.
    """
    import tempfile

    from repro.runner import ResultCache
    from repro.service import AdaptiveSeeds, FixedSeeds, JobSpec, run_job

    policies = {
        "fixed_sweep": FixedSeeds(seeds=tuple(range(fixed_seeds))),
        "adaptive_sweep": AdaptiveSeeds(
            epsilon=epsilon, min_seeds=min_seeds, max_seeds=fixed_seeds,
        ),
    }
    rows: Dict[str, Dict[str, float]] = {}
    with tempfile.TemporaryDirectory() as root:
        for label, policy in policies.items():
            spec = JobSpec(
                experiments=(exp_id,), policy=policy,
                duration=duration, warmup=warmup, collect_digests=False,
            )
            started = time.perf_counter()  # repro-lint: allow=REPRO102 (bench)
            job = run_job(
                spec,
                job_dir=Path(root) / f"jobs-{label}",
                cache=ResultCache(str(Path(root) / f"cache-{label}")),
            )
            wall = time.perf_counter() - started  # repro-lint: allow=REPRO102 (bench)
            stop = job.stops.get(exp_id, {})
            row: Dict[str, float] = {
                "cells": float(len(job.outcomes)),
                "wall_s": round(wall, 4),
            }
            if label == "adaptive_sweep":
                row["epsilon"] = epsilon
                if stop.get("half_width") is not None:
                    row["half_width"] = round(stop["half_width"], 4)
            rows[label] = row
    return rows


# -------------------------------------------------------------- baseline file

def load_baseline(path: Path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(
    path: Path,
    results: Dict[str, Dict[str, float]],
    backends: Optional[Dict[str, Dict[str, Dict[str, float]]]] = None,
    warm_start: Optional[Dict[str, Dict[str, float]]] = None,
    sweep: Optional[Dict[str, Dict[str, float]]] = None,
) -> None:
    """Write the measured baseline, preserving any frozen ``pre_pr`` block.

    ``results`` fills the legacy ``benchmarks`` block (the heap numbers);
    ``backends`` adds the per-backend matrix the ``--check`` gate walks.
    ``warm_start`` and ``sweep`` record informational sections — the
    checkpoint-restore speedup and the adaptive-vs-fixed seed-allocation
    savings — never gated (``check_against`` does not walk them).
    """
    data: Dict = {
        "schema": 2,
        "tolerance": DEFAULT_TOLERANCE,
        "note": (
            "Engine micro-benchmark baseline. 'benchmarks' mirrors the heap "
            "backend and 'backends' holds one section per event-queue "
            "backend; both are refreshed by `python -m repro.runner.bench "
            "--write`. 'pre_pr' is the frozen pre-optimization reference "
            "and is never rewritten. 'warm_start' records the informational "
            "checkpoint-restore speedup (six-pad cell, snapshot at t=50 of "
            "100) and 'sweep' the adaptive-vs-fixed seed-allocation savings "
            "(table2 via the service orchestrator); neither is gated by "
            "--check."
        ),
    }
    previous: Dict = {}
    if path.exists():
        try:
            previous = load_baseline(path)
        except (OSError, json.JSONDecodeError):
            previous = {}
        if "pre_pr" in previous:
            data["pre_pr"] = previous["pre_pr"]
        if "tolerance" in previous:
            data["tolerance"] = previous["tolerance"]
    data["benchmarks"] = results
    if backends is not None:
        data["backends"] = backends
    if warm_start is not None:
        data["warm_start"] = warm_start
    elif "warm_start" in previous:
        data["warm_start"] = previous["warm_start"]
    if sweep is not None:
        data["sweep"] = sweep
    elif "sweep" in previous:
        data["sweep"] = previous["sweep"]
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_against(
    baseline: Dict,
    results: Dict[str, Dict[str, float]],
    backend: Optional[str] = None,
) -> List[str]:
    """Regression messages; empty when every bench is within tolerance.

    With ``backend`` given, results are compared against that backend's
    section of the committed matrix (falling back to the legacy
    ``benchmarks`` block when the section does not exist yet).
    """
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    committed = baseline.get("benchmarks", {})
    if backend is not None:
        committed = baseline.get("backends", {}).get(backend, committed)
    failures: List[str] = []
    label = f"[{backend}] " if backend else ""
    for name, current in results.items():
        reference = committed.get(name)
        if reference is None:
            continue
        floor = reference["events_per_sec"] * (1.0 - tolerance)
        if current["events_per_sec"] < floor:
            failures.append(
                f"{label}{name}: {current['events_per_sec']:,.0f} events/sec "
                f"is below {floor:,.0f} (baseline "
                f"{reference['events_per_sec']:,.0f} - {tolerance:.0%} "
                "tolerance)"
            )
    return failures


def _render(results: Dict[str, Dict[str, float]]) -> str:
    lines = [
        f"{'bench':24} {'events':>10} {'wall (s)':>10} {'median (s)':>11} "
        f"{'events/sec':>12}"
    ]
    for name, row in results.items():
        median = row.get("median_s", row["wall_s"])
        lines.append(
            f"{name:24} {row['events']:>10,.0f} {row['wall_s']:>10.3f} "
            f"{median:>11.3f} {row['events_per_sec']:>12,.0f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.bench",
        description="Engine micro-benchmarks vs the committed baseline.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline JSON (default: benchmarks/{_BASELINE_NAME})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed repeats per bench; the best run is kept",
    )
    parser.add_argument(
        "--queue", default=None, metavar="BACKEND",
        help="event-queue backend for a plain run or --profile "
        "(default heap; --write/--check always run every backend)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true",
        help="refresh the baseline file with this machine's numbers "
        "(full backend matrix)",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail if any bench on any backend regresses beyond tolerance",
    )
    mode.add_argument(
        "--overhead", action="store_true",
        help="time the six-pad cell with metrics off vs on and verify "
        "identical event counts",
    )
    mode.add_argument(
        "--warm-start", action="store_true",
        help="time the six-pad cell cold vs restored from a mid-run "
        "checkpoint and verify identical horizon event counts",
    )
    mode.add_argument(
        "--sweep", action="store_true",
        help="run table2 once with a fixed 8-seed allocation and once "
        "under adaptive (CI-driven) stopping; report cells and wall "
        "time saved",
    )
    mode.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run the single-backend table under cProfile and dump "
        "stats to FILE (inspect with 'python -m pstats FILE')",
    )
    args = parser.parse_args(argv)

    if args.overhead:
        try:
            overhead = measure_metrics_overhead(repeats=args.repeats)
        except RuntimeError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 1
        print(_render(overhead))  # repro-lint: allow=REPRO107 (bench CLI output)
        off = overhead["metrics_off"]["events_per_sec"]
        on = overhead["metrics_on"]["events_per_sec"]
        print(f"\nmetrics-on overhead: {(off / on - 1.0):+.1%} "  # repro-lint: allow=REPRO107 (bench CLI output)
              f"(identical {overhead['metrics_off']['events']:,.0f} events)")
        return 0

    if args.warm_start:
        try:
            rows = measure_warm_start(repeats=args.repeats)
        except RuntimeError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 1
        print(_render(rows))  # repro-lint: allow=REPRO107 (bench CLI output)
        cold = rows["cold_run"]
        warm = rows["warm_start_run"]
        print(  # repro-lint: allow=REPRO107 (bench CLI output)
            f"\nwarm start: {warm['events']:,.0f} of {cold['events']:,.0f} "
            f"events simulated ({1.0 - warm['events'] / cold['events']:.0%} "
            f"skipped), wall {cold['wall_s']:.3f}s -> {warm['wall_s']:.3f}s"
        )
        return 0

    if args.sweep:
        rows = measure_sweep_savings()
        fixed = rows["fixed_sweep"]
        adaptive = rows["adaptive_sweep"]
        for label, row in rows.items():
            extra = ""
            if "half_width" in row:
                extra = (f"  (CI half-width {row['half_width']:.3g} <= "
                         f"epsilon {row['epsilon']:g})")
            print(f"{label:<24} {row['cells']:>6.0f} cells "  # repro-lint: allow=REPRO107 (bench CLI output)
                  f"{row['wall_s']:>8.3f}s{extra}")
        saved = fixed["cells"] - adaptive["cells"]
        print(  # repro-lint: allow=REPRO107 (bench CLI output)
            f"\nadaptive stopping: {saved:.0f} of {fixed['cells']:.0f} "
            f"cells skipped ({saved / fixed['cells']:.0%}), wall "
            f"{fixed['wall_s']:.3f}s -> {adaptive['wall_s']:.3f}s"
        )
        return 0

    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        results = run_benches(repeats=args.repeats, queue=args.queue)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(_render(results))  # repro-lint: allow=REPRO107 (bench CLI output)
        print(f"\nprofile stats written to {args.profile}")  # repro-lint: allow=REPRO107 (bench CLI output)
        return 0

    path = args.baseline if args.baseline is not None else default_baseline_path()

    if args.write or args.check:
        matrix = run_bench_matrix(repeats=args.repeats)
        for backend, results in matrix.items():
            print(f"-- backend: {backend}")  # repro-lint: allow=REPRO107 (bench CLI output)
            print(_render(results))  # repro-lint: allow=REPRO107 (bench CLI output)
            print()  # repro-lint: allow=REPRO107 (bench CLI output)
        if args.write:
            warm_rows = measure_warm_start(repeats=args.repeats)
            print("-- warm start (informational)")  # repro-lint: allow=REPRO107 (bench CLI output)
            print(_render(warm_rows))  # repro-lint: allow=REPRO107 (bench CLI output)
            sweep_rows = measure_sweep_savings()
            print("-- adaptive sweep (informational)")  # repro-lint: allow=REPRO107 (bench CLI output)
            for label, row in sweep_rows.items():
                print(f"   {label}: {row['cells']:.0f} cells, "  # repro-lint: allow=REPRO107 (bench CLI output)
                      f"{row['wall_s']:.3f}s")
            write_baseline(
                path, matrix.get("heap", {}), backends=matrix,
                warm_start=warm_rows, sweep=sweep_rows,
            )
            print(f"baseline written to {path}")  # repro-lint: allow=REPRO107 (bench CLI output)
            return 0
        try:
            baseline = load_baseline(path)
        except OSError as exc:
            print(f"cannot read baseline {path}: {exc}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 2
        failures: List[str] = []
        for backend, results in matrix.items():
            failures.extend(check_against(baseline, results, backend=backend))
        if failures:
            print("REGRESSION:", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            for message in failures:
                print(f"  {message}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 1
        print("all benches within tolerance of the committed baseline")  # repro-lint: allow=REPRO107 (bench CLI output)
        return 0

    results = run_benches(repeats=args.repeats, queue=args.queue)
    print(_render(results))  # repro-lint: allow=REPRO107 (bench CLI output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
