"""Engine micro-benchmarks with a committed JSON baseline.

Measures the simulator machinery itself — bare kernel event throughput
plus two saturated MACAW cells — and compares events/sec against the
committed ``benchmarks/BENCH_engine.json``:

* ``python -m repro.runner.bench`` runs the benches and prints a table;
* ``--write`` refreshes the baseline in place (run on a quiet machine);
* ``--check`` fails (exit 1) when any bench's events/sec falls more than
  ``tolerance`` (default 25%) below the baseline — the CI regression
  gate.  The benches run with metrics off, so ``--check`` is also the
  metrics-off overhead gate: the observability hook costs one
  ``is not None`` branch per fired event when disabled.
* ``--overhead`` times the six-pad cell with metrics off vs. on
  (1 s cadence) and verifies both runs fire identical event counts —
  the determinism contract measured, not assumed.

The baseline file also keeps a frozen ``pre_pr`` section: the numbers the
engine produced before the performance PR, kept so the speedup claim
stays auditable.  ``--write`` never touches it.

Wall-clock timing here is intentional and exempt from the determinism
lint (REPRO102): benches measure the host, not the simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator

#: Relative events/sec drop that fails ``--check`` (0.25 = 25% slower).
DEFAULT_TOLERANCE = 0.25

#: Timed repeats per bench; the best (least-interrupted) run is kept.
DEFAULT_REPEATS = 3

_BASELINE_NAME = "BENCH_engine.json"


def default_baseline_path() -> Path:
    """``benchmarks/BENCH_engine.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / _BASELINE_NAME


# --------------------------------------------------------------------- benches

def _bench_kernel_chain() -> int:
    """Schedule-and-fire cost of the bare event loop (50k chained events)."""
    sim = Simulator()

    def chain(n: int) -> None:
        if n:
            sim.schedule(0.001, chain, n - 1)

    chain(50_000)
    sim.run()
    return sim.events_fired


def _bench_single_stream() -> int:
    """One saturated MACAW stream, 100 s simulated."""
    from repro.topo.figures import single_stream_cell

    scenario = single_stream_cell(protocol="macaw", seed=1).build().run(100.0)
    return scenario.sim.events_fired


def _bench_six_pad() -> int:
    """The contended six-pad MACAW cell of Figure 3, 100 s simulated."""
    from repro.topo.figures import fig3_six_pads

    scenario = fig3_six_pads(protocol="macaw", seed=1).build().run(100.0)
    return scenario.sim.events_fired


BENCHES: List[Tuple[str, Callable[[], int]]] = [
    ("kernel_chain", _bench_kernel_chain),
    ("single_stream_cell", _bench_single_stream),
    ("six_pad_cell", _bench_six_pad),
]


def run_benches(repeats: int = DEFAULT_REPEATS) -> Dict[str, Dict[str, float]]:
    """Run every bench ``repeats`` times; keep each bench's best wall time."""
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in BENCHES:
        best: Optional[float] = None
        events = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter()  # repro-lint: allow=REPRO102 (bench)
            events = fn()
            wall = time.perf_counter() - started  # repro-lint: allow=REPRO102
            if best is None or wall < best:
                best = wall
        assert best is not None
        results[name] = {
            "events": events,
            "wall_s": round(best, 4),
            "events_per_sec": round(events / best, 1),
        }
    return results


def measure_metrics_overhead(repeats: int = DEFAULT_REPEATS) -> Dict[str, Dict[str, float]]:
    """Six-pad cell with metrics off vs. on (1 s cadence), best-of-repeats.

    Raises RuntimeError if the two runs fire different event counts —
    instrumentation must be invisible to the event stream.
    """
    from repro.topo.figures import fig3_six_pads

    def run(metrics: object) -> int:
        builder = fig3_six_pads(protocol="macaw", seed=1)
        builder.metrics = metrics
        return builder.build().run(100.0).sim.events_fired

    results: Dict[str, Dict[str, float]] = {}
    for name, metrics in (("metrics_off", False), ("metrics_on", 1.0)):
        best: Optional[float] = None
        events = 0
        for _ in range(max(1, repeats)):
            started = time.perf_counter()  # repro-lint: allow=REPRO102 (bench)
            events = run(metrics)
            wall = time.perf_counter() - started  # repro-lint: allow=REPRO102
            if best is None or wall < best:
                best = wall
        assert best is not None
        results[name] = {
            "events": events,
            "wall_s": round(best, 4),
            "events_per_sec": round(events / best, 1),
        }
    if results["metrics_off"]["events"] != results["metrics_on"]["events"]:
        raise RuntimeError(
            "metrics instrumentation changed the event stream: "
            f"{results['metrics_off']['events']:.0f} events off vs "
            f"{results['metrics_on']['events']:.0f} on"
        )
    return results


# -------------------------------------------------------------- baseline file

def load_baseline(path: Path) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(path: Path, results: Dict[str, Dict[str, float]]) -> None:
    """Write the measured baseline, preserving any frozen ``pre_pr`` block."""
    data: Dict = {
        "schema": 1,
        "tolerance": DEFAULT_TOLERANCE,
        "note": (
            "Engine micro-benchmark baseline. 'benchmarks' is refreshed by "
            "`python -m repro.runner.bench --write`; 'pre_pr' is the frozen "
            "pre-optimization reference and is never rewritten."
        ),
    }
    if path.exists():
        try:
            previous = load_baseline(path)
        except (OSError, json.JSONDecodeError):
            previous = {}
        if "pre_pr" in previous:
            data["pre_pr"] = previous["pre_pr"]
        if "tolerance" in previous:
            data["tolerance"] = previous["tolerance"]
    data["benchmarks"] = results
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_against(
    baseline: Dict, results: Dict[str, Dict[str, float]]
) -> List[str]:
    """Regression messages; empty when every bench is within tolerance."""
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    committed = baseline.get("benchmarks", {})
    failures: List[str] = []
    for name, current in results.items():
        reference = committed.get(name)
        if reference is None:
            continue
        floor = reference["events_per_sec"] * (1.0 - tolerance)
        if current["events_per_sec"] < floor:
            failures.append(
                f"{name}: {current['events_per_sec']:,.0f} events/sec is below "
                f"{floor:,.0f} (baseline {reference['events_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def _render(results: Dict[str, Dict[str, float]]) -> str:
    lines = [f"{'bench':24} {'events':>10} {'wall (s)':>10} {'events/sec':>12}"]
    for name, row in results.items():
        lines.append(
            f"{name:24} {row['events']:>10,.0f} {row['wall_s']:>10.3f} "
            f"{row['events_per_sec']:>12,.0f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.bench",
        description="Engine micro-benchmarks vs the committed baseline.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline JSON (default: benchmarks/{_BASELINE_NAME})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help="timed repeats per bench; the best run is kept",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true",
        help="refresh the baseline file with this machine's numbers",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail if any bench's events/sec regresses beyond tolerance",
    )
    mode.add_argument(
        "--overhead", action="store_true",
        help="time the six-pad cell with metrics off vs on and verify "
        "identical event counts",
    )
    args = parser.parse_args(argv)

    if args.overhead:
        try:
            overhead = measure_metrics_overhead(repeats=args.repeats)
        except RuntimeError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 1
        print(_render(overhead))  # repro-lint: allow=REPRO107 (bench CLI output)
        off = overhead["metrics_off"]["events_per_sec"]
        on = overhead["metrics_on"]["events_per_sec"]
        print(f"\nmetrics-on overhead: {(off / on - 1.0):+.1%} "  # repro-lint: allow=REPRO107 (bench CLI output)
              f"(identical {overhead['metrics_off']['events']:,.0f} events)")
        return 0

    path = args.baseline if args.baseline is not None else default_baseline_path()
    results = run_benches(repeats=args.repeats)
    print(_render(results))  # repro-lint: allow=REPRO107 (bench CLI output)

    if args.write:
        write_baseline(path, results)
        print(f"\nbaseline written to {path}")  # repro-lint: allow=REPRO107 (bench CLI output)
        return 0
    if args.check:
        try:
            baseline = load_baseline(path)
        except OSError as exc:
            print(f"\ncannot read baseline {path}: {exc}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 2
        failures = check_against(baseline, results)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            for message in failures:
                print(f"  {message}", file=sys.stderr)  # repro-lint: allow=REPRO107 (bench CLI output)
            return 1
        print("\nall benches within tolerance of the committed baseline")  # repro-lint: allow=REPRO107 (bench CLI output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
