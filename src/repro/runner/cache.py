"""On-disk memo of experiment cell results.

Regenerating the paper's tables is embarrassingly repetitive: the same
(experiment, seed, duration, warmup) cells run again and again while only
one table is being worked on.  The cache stores each finished
:class:`~repro.runner.cells.CellResult` as a pickle keyed by

    sha256(exp_id, seed, duration, warmup, config-hash, code-version)

where *config-hash* folds in every runtime knob that changes results
(currently: sanitize mode and digest collection, which force-enable
tracing) and *code-version* is a content hash over every ``repro/*.py``
source file.  Any edit to the simulator therefore invalidates every entry
— stale physics can never leak into a table — while re-running an
untouched tree is pure cache hits.

The cache is advisory: unreadable or unpicklable entries count as misses,
and writes go through an atomic rename so a crashed run never leaves a
truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle  # repro-lint: allow=REPRO114 (CellResult blobs, not live simulator state)
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.runner.cells import Cell, CellResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RunProfile

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "MACAW_CACHE_DIR"

#: Default cache location (under the working directory, like .pytest_cache).
DEFAULT_CACHE_DIR = ".macaw_cache"

#: Age (seconds) past which an orphaned ``*.tmp`` write is considered
#: abandoned and swept at cache startup.  Applies only to legacy tmp
#: names that carry no writer pid; pid-tagged tmps are swept as soon as
#: their writer is gone, and never while it is alive.
TMP_SWEEP_AGE_S = 3600.0


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned elsewhere
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill
        return True
    return True


def _tmp_writer_pid(name: str) -> Optional[int]:
    """The writer pid encoded in a ``*.<pid>.tmp`` name, or None (legacy)."""
    parts = name.split(".")
    if len(parts) >= 3 and parts[-1] == "tmp":
        try:
            return int(parts[-2])
        except ValueError:
            return None
    return None

_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Content hash of every ``repro`` source file, memoized per process."""
    global _code_version_memo
    if _code_version_memo is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(str(path.relative_to(package_root)).encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _code_version_memo = hasher.hexdigest()
    return _code_version_memo


def config_hash(sanitize: bool, collect_digests: bool,
                metrics_interval: Optional[float] = None) -> str:
    """Hash of the runtime knobs that alter a cell's observable result.

    ``metrics_interval`` joins the blob only when set, so keys from
    metric-less sweeps are unchanged across versions — but a metrics
    sweep can never be served a cached result without its series.
    """
    knobs: dict = {"sanitize": sanitize, "collect_digests": collect_digests}
    if metrics_interval is not None:
        knobs["metrics_interval"] = metrics_interval
    blob = json.dumps(knobs, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def profile_hash(profile: "RunProfile", collect_digests: bool) -> str:
    """Config hash of a full :class:`~repro.core.config.RunProfile`.

    The profile's own :meth:`~repro.core.config.RunProfile.digest` covers
    every result-affecting knob (sanitize, metrics, faults, timing, …);
    only digest collection lives outside it.  This supersedes
    :func:`config_hash` — which remains for callers that predate profiles
    — and intentionally produces a different key space, so pre-profile
    cache entries are never served to profile-keyed requests.
    """
    blob = json.dumps(
        {"profile": profile.digest(), "collect_digests": collect_digests},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry cell cache rooted at ``directory``."""

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove orphaned ``*.tmp`` files left by killed pool workers.

        :meth:`put` writes through a temp file + atomic rename; a worker
        dying between the two strands the temp file forever (its name is
        random, so no later write ever replaces it).  Swept entries are
        never *served* regardless — :meth:`get` only opens ``*.pkl`` —
        this is purely a disk-hygiene pass.

        Tmp names embed the writer's pid (``…<pid>.tmp``), so a file is
        swept exactly when its writer is gone — an age cutoff alone
        would yank a still-running worker's slow write out from under it
        the moment it crossed the threshold.  Legacy pid-less names fall
        back to the :data:`TMP_SWEEP_AGE_S` cutoff.
        """
        try:
            stale = list(self.directory.glob("*.tmp"))
        except OSError:  # pragma: no cover - unreadable cache dir
            return
        cutoff = time.time() - TMP_SWEEP_AGE_S  # repro-lint: allow=REPRO102 (file mtime age, not sim time)
        for tmp in stale:
            pid = _tmp_writer_pid(tmp.name)
            try:
                if pid is not None:
                    if not _pid_alive(pid):
                        tmp.unlink()
                elif tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
            except OSError:  # pragma: no cover - raced or perms; harmless
                continue

    # ----------------------------------------------------------------- keys
    def key(self, cell: Cell, config: str, version: Optional[str] = None) -> str:
        """Cache key for a cell; requires pinned duration/warmup."""
        cell = cell.resolved()
        blob = json.dumps(
            {
                "exp_id": cell.exp_id,
                "seed": cell.seed,
                "duration": cell.duration,
                "warmup": cell.warmup,
                "config": config,
                "code": version if version is not None else code_version(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -------------------------------------------------------------- get/put
    def get(self, cell: Cell, config: str, version: Optional[str] = None) -> Optional[CellResult]:
        """The cached result, or None on a miss (or unreadable entry)."""
        path = self._path(self.key(cell, config, version))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, CellResult):
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        result.wall_s = 0.0
        return result

    def put(self, result: CellResult, config: str, version: Optional[str] = None) -> None:
        """Store a finished cell atomically (pid-tagged tmp file + rename).

        A sweeper running under the pre-pid sweep logic (or after pid
        reuse) can still unlink the tmp between write and rename; the
        result is good, so the write is simply retried once rather than
        failing the cell.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(result.cell, config, version))
        for attempt in (0, 1):
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=f".{os.getpid()}.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except FileNotFoundError:
                if attempt == 0:
                    continue
                raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return
