"""Fan experiment cells out over worker processes.

Each cell is an independent simulation with its own seeded RNG universe,
so the sweep is embarrassingly parallel — the only contract is that the
*results* must be indistinguishable from a serial sweep.  Three design
points keep that true:

* workers receive only the cell description (experiment id + seed +
  bounds) and re-instantiate the experiment from the registry, so no
  mutable state travels between processes;
* output order is input order regardless of worker scheduling
  (``Pool.map`` preserves ordering);
* sanitize mode is resolved in the parent and shipped in the payload, so
  a ``with sanitized():`` block in the parent applies in workers too
  (environment-variable opt-in already travels with the environment).

Determinism is enforced end-to-end by the serial-vs-parallel digest tests:
same cells through ``jobs=1`` and ``jobs=N`` must produce byte-identical
per-cell ``Trace.digest()`` values.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence, Tuple

from repro.experiments.registry import get_experiment
from repro.obs.runtime import collecting
from repro.runner.cache import ResultCache, config_hash
from repro.runner.cells import Cell, CellResult
from repro.verify.runtime import sanitize_enabled, sanitized

_WorkerPayload = Tuple[Cell, bool, bool, Optional[float]]


def _preferred_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the imported tree), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _execute_cell(cell: Cell, collect_digest: bool, sanitize: bool,
                  metrics_interval: Optional[float] = None) -> CellResult:
    """Run one cell in this process and package the outcome."""
    metrics: List[dict] = []
    with sanitized(sanitize):
        exp = get_experiment(cell.exp_id)
        started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
        if metrics_interval is not None:
            with collecting(metrics_interval) as metrics:
                result = exp.run(
                    seed=cell.seed,
                    duration=cell.duration,
                    warmup=cell.warmup,
                    collect_digest=collect_digest,
                )
        else:
            result = exp.run(
                seed=cell.seed,
                duration=cell.duration,
                warmup=cell.warmup,
                collect_digest=collect_digest,
            )
        wall = time.perf_counter() - started  # repro-lint: allow=REPRO102
    return CellResult(
        cell=cell.resolved(),
        result=result,
        digest=result.digest,
        wall_s=wall,
        failed_checks=[name for name, ok in result.checks.items() if not ok],
        metrics=metrics,
    )


def _worker(payload: _WorkerPayload) -> CellResult:
    cell, collect_digest, sanitize, metrics_interval = payload
    return _execute_cell(cell, collect_digest, sanitize, metrics_interval)


def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    collect_digests: bool = False,
    sanitize: Optional[bool] = None,
    metrics_interval: Optional[float] = None,
) -> List[CellResult]:
    """Run every cell and return results in input order.

    Parameters
    ----------
    cells:
        The (experiment, seed) grid to run; see
        :func:`repro.runner.cells.expand_cells`.
    jobs:
        Worker processes.  1 runs serially in-process (no multiprocessing
        import side effects); N > 1 uses a process pool of at most
        ``min(jobs, pending cells)`` workers.
    cache:
        Optional :class:`ResultCache`; hits skip the run entirely, misses
        are stored after running.  The cache key folds in the sanitize /
        digest configuration and the source-tree content hash.
    collect_digests:
        Capture per-cell combined trace digests (forces tracing on inside
        the runs — the equivalence contract between serial and parallel).
    sanitize:
        Explicit sanitize override; None resolves the ambient setting
        (``with sanitized():`` or ``REPRO_SANITIZE``) in the parent.
    metrics_interval:
        When set, every cell runs instrumented (:mod:`repro.obs`) at this
        sampling cadence and ships its metrics dumps back on
        :attr:`CellResult.metrics`.  Dumps are plain dicts, so they pickle
        across the pool like the rest of the result.  The cache key folds
        the interval in, so metric-less cached results never satisfy a
        metrics request (and vice versa).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    sanitize = sanitize_enabled(sanitize)
    config = config_hash(sanitize, collect_digests, metrics_interval)

    resolved = [cell.resolved() for cell in cells]
    results: List[Optional[CellResult]] = [None] * len(resolved)

    pending: List[Tuple[int, Cell]] = []
    for index, cell in enumerate(resolved):
        hit = cache.get(cell, config) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            pending.append((index, cell))

    if pending:
        payloads = [(cell, collect_digests, sanitize, metrics_interval)
                    for _, cell in pending]
        if jobs == 1 or len(pending) == 1:
            fresh = [_worker(payload) for payload in payloads]
        else:
            ctx = _preferred_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                fresh = pool.map(_worker, payloads, chunksize=1)
        for (index, _), outcome in zip(pending, fresh):
            results[index] = outcome
            if cache is not None:
                cache.put(outcome, config)

    return [result for result in results if result is not None]
