"""Fan experiment cells out over worker processes.

Each cell is an independent simulation with its own seeded RNG universe,
so the sweep is embarrassingly parallel — the only contract is that the
*results* must be indistinguishable from a serial sweep.  Three design
points keep that true:

* workers receive only the cell description (experiment id + seed +
  bounds) plus one pinned :class:`~repro.core.config.RunProfile`, and
  re-instantiate the experiment from the registry, so no mutable state
  travels between processes;
* output order is input order regardless of worker scheduling (each
  result carries its grid index; completion order only affects when a
  result is flushed to the cache);
* ambient switches (sanitize blocks, metrics collection, the active
  profile) are resolved in the parent and *pinned into the profile*
  before it ships, so a ``with sanitized():`` or ``active_profile(...)``
  block in the parent applies identically in every worker.

Determinism is enforced end-to-end by the serial-vs-parallel digest tests:
same cells through ``jobs=1`` and ``jobs=N`` must produce byte-identical
per-cell ``Trace.digest()`` values — with or without a fault schedule on
the profile.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.config import RunProfile, WarmStart, warn_deprecated_kwarg
from repro.experiments.registry import get_experiment
from repro.obs.runtime import collecting, resolve_metrics
from repro.runner.cache import ResultCache, profile_hash
from repro.runner.cells import Cell, CellResult
from repro.verify.runtime import sanitize_enabled, sanitized

_WorkerPayload = Tuple[int, Cell, bool, RunProfile]


def _preferred_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the imported tree), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def execute_cell(cell: Cell, collect_digest: bool,
                 profile: RunProfile) -> CellResult:
    """Run one cell in this process and package the outcome.

    ``profile`` arrives pinned (sanitize and metrics resolved to concrete
    values in the parent), so this function behaves identically whether
    it runs inline or inside a pool worker.
    """
    metrics: List[dict] = []
    with sanitized(bool(profile.sanitize)):
        exp = get_experiment(cell.exp_id)
        started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
        if profile.metrics:
            with collecting(profile.metrics) as metrics:
                result = exp.run(
                    seed=cell.seed,
                    duration=cell.duration,
                    warmup=cell.warmup,
                    collect_digest=collect_digest,
                    profile=profile,
                )
        else:
            result = exp.run(
                seed=cell.seed,
                duration=cell.duration,
                warmup=cell.warmup,
                collect_digest=collect_digest,
                profile=profile,
            )
        wall = time.perf_counter() - started  # repro-lint: allow=REPRO102
    return CellResult(
        cell=cell.resolved(),
        result=result,
        digest=result.digest,
        wall_s=wall,
        failed_checks=[name for name, ok in result.checks.items() if not ok],
        metrics=metrics,
    )


def _worker(payload: _WorkerPayload) -> Tuple[int, CellResult]:
    index, cell, collect_digest, profile = payload
    return index, execute_cell(cell, collect_digest, profile)


def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    collect_digests: bool = False,
    sanitize: Optional[bool] = None,
    metrics_interval: Optional[float] = None,
    profile: Optional[RunProfile] = None,
    warm_start: Optional[WarmStart] = None,
) -> List[CellResult]:
    """Run every cell and return results in input order.

    Parameters
    ----------
    cells:
        The (experiment, seed) grid to run; see
        :func:`repro.runner.cells.expand_cells`.
    jobs:
        Worker processes.  1 runs serially in-process (no multiprocessing
        import side effects); N > 1 uses a process pool of at most
        ``min(jobs, pending cells)`` workers.
    cache:
        Optional :class:`ResultCache`; hits skip the run entirely, misses
        are stored after running.  The cache key folds in the pinned
        profile digest, digest collection and the source-tree content
        hash.
    collect_digests:
        Capture per-cell combined trace digests (forces tracing on inside
        the runs — the equivalence contract between serial and parallel).
    profile:
        The :class:`~repro.core.config.RunProfile` every cell runs under
        (sanitizer, metrics, faults, timing, …).  None adopts the ambient
        profile (:func:`~repro.core.config.active_profile`) or defaults.
        Ambient switches are pinned into the profile in the parent, so
        serial and parallel execution see identical configuration.
    warm_start:
        Optional :class:`~repro.core.config.WarmStart`: every cell's
        scenarios fast-forward to ``warm_start.at`` through the keyed
        snapshot store instead of simulating the warm-up from t=0.  The
        first cell needing a given (builder, profile, code) key warms
        the store; the rest restore.  Folds into the profile — and hence
        into the cache key — so warm results never collide with cold
        ones.  Results are byte-identical to cold runs by the snapshot
        subsystem's restore invariant.
    sanitize, metrics_interval:
        Deprecated spellings of ``profile.sanitize`` /
        ``profile.metrics``; each folds into the profile and warns once
        per process.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if profile is None:
        profile = RunProfile.current()
    if warm_start is not None:
        profile = profile.but(warm_start=warm_start)
    if sanitize is not None:
        warn_deprecated_kwarg("run_cells", "sanitize")
        profile = profile.but(sanitize=sanitize)
    if metrics_interval is not None:
        warn_deprecated_kwarg("run_cells", "metrics_interval")
        profile = profile.but(metrics=metrics_interval)
    # Pin ambient resolution in the parent: workers must not re-consult
    # environment blocks they never entered.
    pinned = profile.but(
        sanitize=sanitize_enabled(profile.sanitize),
        metrics=resolve_metrics(profile.metrics) or False,
    )
    config = profile_hash(pinned, collect_digests)

    resolved = [cell.resolved() for cell in cells]
    results: List[Optional[CellResult]] = [None] * len(resolved)

    pending: List[Tuple[int, Cell]] = []
    for index, cell in enumerate(resolved):
        hit = cache.get(cell, config) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            pending.append((index, cell))

    if pending:
        # Results are stored (and cached) as they *complete*, not after
        # the whole grid finishes: a KeyboardInterrupt mid-sweep leaves
        # every finished cell flushed to the cache, so the re-run after
        # a ^C is pure hits up to the interruption point.  Output order
        # is restored from the carried index, so ordering — and hence
        # serial/parallel byte-equality — is unchanged.
        payloads = [
            (index, cell, collect_digests, pinned) for index, cell in pending
        ]
        def store(index: int, outcome: CellResult) -> None:
            results[index] = outcome
            if cache is not None:
                cache.put(outcome, config)
        if jobs == 1 or len(pending) == 1:
            for payload in payloads:
                store(*_worker(payload))
        else:
            ctx = _preferred_context()
            # Pool.__exit__ terminates workers, interrupted or not — a
            # ^C propagates out of the iteration without leaking the pool.
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                for index, outcome in pool.imap_unordered(
                        _worker, payloads, chunksize=1):
                    store(index, outcome)

    return [result for result in results if result is not None]
