"""Parallel experiment runner: fan (experiment, seed) cells over workers.

The sweep layer on top of :mod:`repro.experiments`: a grid of
:class:`Cell` requests runs through :func:`run_cells`, optionally over a
``multiprocessing`` pool and/or an on-disk :class:`ResultCache`.  The
determinism contract — parallel and serial sweeps produce byte-identical
per-cell trace digests — is what makes ``--jobs N`` a pure speed knob.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_version,
    config_hash,
    profile_hash,
)
from repro.runner.cells import Cell, CellResult, expand_cells
from repro.runner.parallel import execute_cell, run_cells

__all__ = [
    "CACHE_DIR_ENV",
    "Cell",
    "CellResult",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_version",
    "config_hash",
    "execute_cell",
    "expand_cells",
    "profile_hash",
    "run_cells",
]
