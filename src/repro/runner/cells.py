"""The unit of parallel experiment work: one (experiment, seed) cell.

The paper's evaluation is a grid of tables × variants × seeds.  Each
:class:`Cell` names one grid cell — an experiment id plus a seed and run
bounds — and a :class:`CellResult` carries everything a table, bench or
equivalence test needs back from running it.  Cells are tiny, picklable
and order-independent, which is what lets the runner fan them out over
worker processes and memoize them on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment


@dataclass(frozen=True)
class Cell:
    """One (experiment, seed) run request.

    ``duration``/``warmup`` of None mean "the experiment's default"; use
    :meth:`resolved` to pin them, which the cache must do so that explicit
    defaults and implied defaults hit the same entry.
    """

    exp_id: str
    seed: int = 0
    duration: Optional[float] = None
    warmup: Optional[float] = None

    def resolved(self) -> "Cell":
        """The same cell with duration/warmup pinned to concrete values."""
        if self.duration is not None and self.warmup is not None:
            return self
        exp = get_experiment(self.exp_id)
        return replace(
            self,
            duration=self.duration if self.duration is not None else exp.default_duration,
            warmup=self.warmup if self.warmup is not None else exp.default_warmup,
        )


@dataclass
class CellResult:
    """Outcome of one cell run."""

    cell: Cell
    result: ExperimentResult
    #: Combined trace digest when the run collected digests (None otherwise).
    digest: Optional[str] = None
    #: Wall-clock seconds the run took (0.0 when served from the cache).
    wall_s: float = 0.0
    #: True when the result came from the on-disk cache, not a fresh run.
    cached: bool = False
    #: Qualitative check failures, for quick fleet-level summaries.
    failed_checks: List[str] = field(default_factory=list)
    #: Metrics dumps (one plain dict per scenario run inside the cell; see
    #: ``repro.obs.probes.ScenarioMetrics.dump``) when the sweep ran with
    #: a metrics interval; empty otherwise.
    metrics: List[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failed_checks


def expand_cells(
    exp_ids: Iterable[str],
    seeds: Sequence[int],
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
) -> List[Cell]:
    """The full experiment × seed grid, experiments outermost.

    The order is the deterministic output order of
    :func:`repro.runner.run_cells` regardless of worker scheduling.
    """
    return [
        Cell(exp_id=exp_id, seed=seed, duration=duration, warmup=warmup)
        for exp_id in exp_ids
        for seed in seeds
    ]
