"""The event-queue backend interface.

The kernel (:class:`repro.sim.kernel.Simulator`) owns the clock, the
fired-event counter and the callback dispatch; *which data structure
holds the pending events* is this interface.  Two backends ship:

* :class:`~repro.sim.queues.heap.HeapQueue` — the classic binary heap of
  ``(time, priority, seq, handle)`` tuples (the default, and the
  reference semantics);
* :class:`~repro.sim.queues.wheel.WheelQueue` — a sparse calendar
  queue / timer wheel with O(1) amortized schedule and cancel, built for
  the MAC workload where nearly every frame arms, extends or cancels a
  timeout.

**Determinism contract.**  A backend must deliver live events in exactly
ascending ``(time, priority, seq)`` order — the order the heap produces —
so that ``events_fired`` and ``Trace.digest()`` are byte-identical on
every seed regardless of backend.  ``seq`` values are globally unique and
assigned at schedule (and re-assigned at reschedule) time, so the order
is total.

**Dead-entry accounting.**  Cancellation is lazy everywhere: a cancelled
(or, for backends with in-place reschedule, *stale*) entry stays queued
and is skipped when it surfaces.  The backend tracks its own dead count —
fed by :meth:`note_cancelled` / :meth:`reschedule`, drained by head
purges and compaction — so every pop path (``run``, ``step``, ``peek``)
maintains the same compaction pressure.  When a queue larger than
:data:`COMPACT_MIN_SIZE` falls below half live, the backend sweeps dead
entries out, bounding the weight long timer-heavy runs carry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, List, Optional, Tuple

from repro.sim.events import EventHandle

#: Compact when the structure holds more than this many entries and fewer
#: than half of them are live.  Small enough to bound memory on
#: cancel-heavy workloads, large enough that compaction never shows up on
#: short runs.
COMPACT_MIN_SIZE = 512

#: Upper bound on the simulator's handle free list: enough to cover every
#: timer a large cell keeps in flight, small enough that a burst of
#: cancellations cannot pin memory forever.
POOL_MAX = 1024

#: A queued event: C-level tuple comparisons order the structure, and the
#: embedded ``seq`` doubles as the staleness stamp for backends that
#: support in-place reschedule (a handle whose ``seq`` moved on leaves the
#: old entry dead in place).
QueueEntry = Tuple[float, int, int, EventHandle]


class EventQueue(ABC):
    """Pending-event store: ascending ``(time, priority, seq)`` delivery.

    Attributes
    ----------
    live:
        Number of queued events that are still due to fire.  Maintained
        in O(1); this is what :meth:`Simulator.pending_count` reports.
    pool:
        Optional free-list the backend drops dead *pooled* handles into
        when it purges their entries (see
        :class:`~repro.sim.events.EventHandle` pooling).  Set by the
        owning simulator; backends must only recycle a handle whose
        popped entry carries its current ``seq`` — that entry is the
        handle's single live placement, so the recycle happens exactly
        once.
    """

    #: Registry name of the backend (``"heap"``, ``"wheel"``).
    name: ClassVar[str] = ""
    #: True when :meth:`reschedule` moves a live handle without a new
    #: entry allocation dance; the kernel's rearm fast path keys off it.
    supports_reschedule: ClassVar[bool] = False

    live: int
    pool: Optional[List[EventHandle]]

    @abstractmethod
    def push(self, time: float, priority: int, seq: int,
             handle: EventHandle) -> None:
        """Queue one event.  The kernel has already validated ``time``."""

    @abstractmethod
    def pop_next(self, until: Optional[float]) -> Optional[EventHandle]:
        """Remove and return the next live handle with ``time <= until``.

        Returns None when the queue is drained or the head lies beyond
        ``until`` (the head then stays queued).  Dead entries surfacing
        at the head are purged — and accounted — along the way.
        """

    @abstractmethod
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None.  Purges dead heads."""

    @abstractmethod
    def note_cancelled(self) -> None:
        """One queued event was cancelled (lazy: its entry stays put)."""

    def reschedule(self, handle: EventHandle, time: float, priority: int,
                   seq: int) -> None:
        """Move a live handle to a new ``(time, priority, seq)`` key.

        Only called when :attr:`supports_reschedule` is True.  The old
        entry — identified by the handle's previous ``seq`` — becomes
        dead in place.  The backend MUST assign the handle's ``time``,
        ``priority`` and ``seq`` fields to the new key *before* any
        internal compaction or purge can run: liveness is decided by
        ``entry seq == handle.seq``, so exactly one entry has to match
        the handle at every observable moment or a sweep mid-reschedule
        keeps the stale entry and silently drops the event.
        """
        raise NotImplementedError(f"{self.name or type(self).__name__} "
                                  "does not support in-place reschedule")

    @abstractmethod
    def __len__(self) -> int:
        """Total queued entries, dead ones included."""

    def live_entries(self) -> List[QueueEntry]:
        """All live entries in ascending ``(time, priority, seq)`` order.

        Read-only: the queue is left untouched (no purging, no
        compaction), so a snapshot capture mid-run cannot perturb the
        subsequent delivery order.  Backends decide liveness exactly the
        way their own purge paths do.
        """
        raise NotImplementedError(f"{self.name or type(self).__name__} "
                                  "does not support snapshot capture")

    def _recycle(self, handle: EventHandle) -> None:
        """Return a purged pooled handle to the simulator's free list."""
        pool = self.pool
        if pool is not None and len(pool) < POOL_MAX:
            pool.append(handle)
