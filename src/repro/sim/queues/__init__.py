"""Pluggable event-queue backends for the simulation kernel.

:class:`~repro.sim.queues.base.EventQueue` is the contract; two backends
register here:

* ``"heap"`` — the binary tuple heap (default, the reference semantics);
* ``"wheel"`` — the sparse calendar queue / timer wheel with O(1)
  amortized schedule, cancel and reschedule (``"wheel:WIDTH"`` selects a
  bucket width in seconds, e.g. ``"wheel:0.002"``).

Both deliver events in identical ``(time, priority, seq)`` order, so
``events_fired`` and ``Trace.digest()`` are byte-identical per seed —
the parity tests in ``tests/verify/test_queue_parity.py`` pin it.

Selection flows from :class:`repro.core.config.RunProfile` (``queue=``)
through :class:`~repro.topo.builder.ScenarioBuilder` into
``Simulator(queue=...)``; the ``REPRO_QUEUE`` environment variable picks
the ambient default (how CI matrixes the whole test suite over both
backends) and ``"heap"`` is the fallback.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.sim.queues.base import COMPACT_MIN_SIZE, POOL_MAX, EventQueue
from repro.sim.queues.heap import HeapQueue
from repro.sim.queues.wheel import DEFAULT_BUCKET_WIDTH, WheelQueue

__all__ = [
    "COMPACT_MIN_SIZE",
    "DEFAULT_BUCKET_WIDTH",
    "POOL_MAX",
    "EventQueue",
    "HeapQueue",
    "WheelQueue",
    "QUEUE_BACKENDS",
    "make_queue",
    "queue_names",
    "resolve_backend",
]

#: Environment variable naming the ambient backend (``heap``/``wheel``/
#: ``wheel:WIDTH``); unset or empty means ``heap``.
QUEUE_ENV = "REPRO_QUEUE"

QUEUE_BACKENDS: Dict[str, Callable[[], EventQueue]] = {
    "heap": HeapQueue,
    "wheel": WheelQueue,
}


def queue_names() -> List[str]:
    """The registered backend names, in registration order."""
    return list(QUEUE_BACKENDS)


def _parse(spec: str) -> Callable[[], EventQueue]:
    """The factory a backend spec names; raises ValueError when unknown."""
    name, _, arg = spec.partition(":")
    factory = QUEUE_BACKENDS.get(name)
    if factory is None:
        known = ", ".join(queue_names())
        raise ValueError(f"unknown event-queue backend {spec!r} (known: {known})")
    if not arg:
        return factory
    if name != "wheel":
        raise ValueError(f"backend {name!r} takes no argument, got {spec!r}")
    try:
        width = float(arg)
    except ValueError:
        raise ValueError(f"wheel bucket width must be a number, got {spec!r}") from None
    if width <= 0:
        raise ValueError(f"wheel bucket width must be > 0, got {spec!r}")
    return lambda: WheelQueue(bucket_width=width)


def resolve_backend(spec: Optional[str]) -> str:
    """Canonical backend spec: explicit value, else ``$REPRO_QUEUE``, else heap.

    Validates eagerly — an unknown name or malformed width raises
    ValueError here, at configuration time, not deep inside a run.
    """
    if spec is None:
        spec = os.environ.get(QUEUE_ENV, "").strip() or "heap"
    if not isinstance(spec, str):
        raise TypeError(f"queue backend spec must be a string, got {spec!r}")
    _parse(spec)  # validation only
    return spec


def make_queue(spec: Optional[str] = None) -> EventQueue:
    """Instantiate the backend ``spec`` names (None: ambient default)."""
    return _parse(resolve_backend(spec))()
