"""The calendar-queue / timer-wheel backend.

ns-2 answered the same workload MACAW's state machines generate — arm,
extend and cancel a timeout on nearly every frame — with a calendar-queue
scheduler behind a pluggable interface; this is that idea in sparse,
deterministic form:

* time is cut into fixed-width buckets, ``key = int(time / width)``;
* **far** events live in an unsorted per-key list inside a dict — one
  integer multiply, one dict probe, one append: O(1) schedule no matter
  how many events are pending (the heap pays O(log n) here);
* only the **current** bucket is kept as a tiny heap of
  ``(time, priority, seq, handle)`` tuples, so same-instant ordering,
  priorities and in-bucket pops cost O(log b) for bucket occupancy *b*,
  not O(log n);
* a heap of *occupied* bucket keys picks the next bucket to mature, so
  empty expanses of simulated time cost nothing (the dict is sparse —
  there is no ring to walk).

**Determinism.**  Bucket boundaries partition time monotonically
(``int(t / w)`` is non-decreasing in ``t``), future buckets only hold
keys strictly greater than the current one, and events scheduled at or
before the current bucket's range go straight into the current heap —
so delivery is exactly ascending ``(time, priority, seq)``: byte-for-byte
the heap backend's firing order on every seed.

**Cancel and reschedule.**  Cancellation is lazy (the entry dies in
place).  Reschedule — the :class:`~repro.sim.timers.Timer` rearm fast
path — gives the live handle a fresh ``seq`` and pushes one new entry;
the old entry's stored ``seq`` no longer matches the handle's, marking it
stale with no search, no removal, no sift: O(1).  Dead entries (cancelled
or stale) are filtered when their bucket matures, purged when they
surface at the head, and swept wholesale when the queue falls below half
live (same pressure rule as the heap).

The default bucket width (~5 ms) is a few contention slots at the
paper's 256 kbps — wide enough that an exchange's control traffic lands
in one or two buckets, narrow enough that long defer/backoff timers
spread across buckets instead of piling into one.  See DESIGN.md §7 for
tuning notes (``"wheel:WIDTH"`` selects an explicit width).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional

from repro.sim.events import EventHandle
from repro.sim.queues.base import COMPACT_MIN_SIZE, EventQueue, QueueEntry

#: Default bucket width in simulated seconds (~5 contention slots at the
#: paper's 256 kbps radio).
DEFAULT_BUCKET_WIDTH = 0.005

#: Bucket key for times whose key computation leaves float range
#: (``float('inf')`` sentinels, or astronomically large time × a tiny
#: bucket width).  Strictly greater than any finite key — the largest
#: finite float is < 2**1024 and keys are ``int(time / width)`` — so the
#: far bucket matures last and in-bucket ``(time, priority, seq)``
#: ordering keeps delivery byte-identical to the heap backend.
FAR_KEY = 1 << 1100


class WheelQueue(EventQueue):
    """Sparse calendar queue: dict buckets + a current-bucket heap."""

    name = "wheel"
    supports_reschedule = True

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be > 0, got {bucket_width!r}")
        self.bucket_width = bucket_width
        self._inv_width = 1.0 / bucket_width
        #: Heapified entries of every bucket with key <= _cur_key.
        self._cur: List[QueueEntry] = []
        self._cur_key = 0
        #: Future buckets: key -> unsorted entry list (append-only).
        self._buckets: Dict[int, List[QueueEntry]] = {}
        #: Heap of occupied future bucket keys (unique by construction).
        self._keys: List[int] = []
        self._size = 0
        self.live = 0
        self._dead = 0
        self.pool: Optional[List[EventHandle]] = None

    # ------------------------------------------------------------- queueing
    def push(self, time: float, priority: int, seq: int,
             handle: EventHandle) -> None:
        try:
            key = int(time * self._inv_width)
        except (OverflowError, ValueError):
            # inf (the heap backend happily queues a far-future sentinel
            # at float('inf'); backends must be interchangeable) or a
            # finite time × tiny width overflowing float range.  Park it
            # in the single far-future bucket — zero cost on the hot
            # path, since try/except is free when nothing raises.
            key = FAR_KEY
        if key <= self._cur_key:
            # Current-range (and same-instant / call_soon) events join the
            # sorted head directly, preserving global order.
            heappush(self._cur, (time, priority, seq, handle))
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [(time, priority, seq, handle)]
                heappush(self._keys, key)
            else:
                bucket.append((time, priority, seq, handle))
        self._size += 1
        self.live += 1

    def _advance(self) -> bool:
        """Mature the next occupied bucket into the current heap.

        Dead entries are filtered while loading (their bucket never gets
        heapified around them); returns False when no events remain.
        """
        while self._keys:
            key = heappop(self._keys)
            bucket = self._buckets.pop(key, None)
            self._cur_key = key
            if bucket is None:
                continue  # emptied by compaction
            alive: List[QueueEntry] = []
            for entry in bucket:
                head = entry[3]
                if head.seq == entry[2] and not head._cancelled:
                    alive.append(entry)
                else:
                    self._dead -= 1
                    self._size -= 1
                    if head._cancelled and head.seq == entry[2] and head._pooled:
                        self._recycle(head)
            if alive:
                heapify(alive)
                self._cur = alive
                return True
        return False

    def pop_next(self, until: Optional[float]) -> Optional[EventHandle]:
        cur = self._cur
        while True:
            if not cur:
                if not self._advance():
                    return None
                cur = self._cur
                continue
            entry = cur[0]
            head = entry[3]
            if head._cancelled or head.seq != entry[2]:
                heappop(cur)
                self._note_purged(entry[2], head)
                cur = self._cur  # compaction may have swapped the heap
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(cur)
            self._size -= 1
            self.live -= 1
            return head

    def peek_time(self) -> Optional[float]:
        cur = self._cur
        while True:
            if not cur:
                if not self._advance():
                    return None
                cur = self._cur
                continue
            entry = cur[0]
            head = entry[3]
            if head._cancelled or head.seq != entry[2]:
                heappop(cur)
                self._note_purged(entry[2], head)
                cur = self._cur  # compaction may have swapped the heap
                continue
            return entry[0]

    # --------------------------------------------------------- rescheduling
    def reschedule(self, handle: EventHandle, time: float, priority: int,
                   seq: int) -> None:
        # Stamp the handle's new key FIRST: compaction (and the purge
        # paths) decide entry liveness by ``entry seq == handle.seq``, so
        # the handle must already name the entry about to be pushed —
        # otherwise a sweep triggered below would keep the old entry and
        # drop the new one, silently losing the event.
        handle.time = time
        handle.priority = priority
        handle.seq = seq
        # The entry under the handle's *old* seq is now stale-in-place;
        # push() re-counts the handle as live, so net live is unchanged.
        self.live -= 1
        self._dead += 1
        self.push(time, priority, seq, handle)
        self._maybe_compact()

    # ----------------------------------------------------- dead accounting
    def note_cancelled(self) -> None:
        # Called once per cancel; the compaction test is inlined.
        self.live -= 1
        self._dead += 1
        if self._size > COMPACT_MIN_SIZE and self.live < self._size // 2:
            self._compact()

    def _note_purged(self, entry_seq: int, head: EventHandle) -> None:
        self._dead -= 1
        self._size -= 1
        # Recycle only on the handle's current placement: stale entries
        # (seq moved on) may belong to a handle that is alive elsewhere.
        if head._cancelled and head.seq == entry_seq and head._pooled:
            self._recycle(head)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._size > COMPACT_MIN_SIZE and self.live < self._size // 2:
            self._compact()

    def _compact(self) -> None:
        def keep(entry: QueueEntry) -> bool:
            head = entry[3]
            if head.seq == entry[2] and not head._cancelled:
                return not head._fired
            if head._cancelled and head.seq == entry[2] and head._pooled:
                self._recycle(head)
            return False

        cur = [entry for entry in self._cur if keep(entry)]
        heapify(cur)
        self._cur = cur
        buckets: Dict[int, List[QueueEntry]] = {}
        for key, bucket in self._buckets.items():
            alive = [entry for entry in bucket if keep(entry)]
            if alive:
                buckets[key] = alive
        self._buckets = buckets
        self._keys = list(buckets)
        heapify(self._keys)
        self._size = len(cur) + sum(len(b) for b in buckets.values())
        self._dead = 0

    def __len__(self) -> int:
        return self._size

    def live_entries(self) -> List[QueueEntry]:
        # Same liveness predicate as _compact's keep(): current seq, not
        # cancelled, not fired.  Read-only — no purge, no recycle.
        def alive(entry: QueueEntry) -> bool:
            head = entry[3]
            return (head.seq == entry[2] and not head._cancelled
                    and not head._fired)

        out = [entry for entry in self._cur if alive(entry)]
        for bucket in self._buckets.values():
            out.extend(entry for entry in bucket if alive(entry))
        out.sort()
        return out
