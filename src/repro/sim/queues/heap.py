"""The binary-heap backend: the kernel's original event queue.

Entries are ``(time, priority, seq, handle)`` tuples so every sift
comparison is a C-level tuple compare (``seq`` is unique, so the handle
itself is never compared).  Schedule and pop are O(log n); cancellation
is lazy O(1) with the dead entry dropped when it surfaces at the head or
swept out by compaction.  This backend is the reference semantics —
the wheel must match its firing order byte for byte — and the default,
because C-implemented ``heapq`` is very hard to beat until the pending
set grows large and cancel-dominated.

No in-place reschedule: a handle appears in exactly one entry, popped
exactly once, so the hot loop's dead test is a single ``_cancelled``
slot read with no staleness stamp to check.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional

from repro.sim.events import EventHandle
from repro.sim.queues.base import COMPACT_MIN_SIZE, EventQueue, QueueEntry


class HeapQueue(EventQueue):
    """Binary heap of ``(time, priority, seq, handle)`` tuples."""

    name = "heap"
    supports_reschedule = False

    def __init__(self) -> None:
        self._entries: List[QueueEntry] = []
        self.live = 0
        self._dead = 0
        self.pool: Optional[List[EventHandle]] = None

    # ------------------------------------------------------------- queueing
    def push(self, time: float, priority: int, seq: int,
             handle: EventHandle) -> None:
        heappush(self._entries, (time, priority, seq, handle))
        self.live += 1

    def pop_next(self, until: Optional[float]) -> Optional[EventHandle]:
        entries = self._entries
        while entries:
            entry = entries[0]
            head = entry[3]
            # Entries are pushed exactly once and popped before firing, so
            # a queued handle can only be pending or cancelled — reading
            # the _cancelled slot directly skips a property call per event.
            if head._cancelled:
                heappop(entries)
                self._note_purged(head)
                entries = self._entries  # compaction may have swapped the list
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(entries)
            self.live -= 1
            return head
        return None

    def peek_time(self) -> Optional[float]:
        entries = self._entries
        while entries and entries[0][3]._cancelled:
            self._note_purged(heappop(entries)[3])
            entries = self._entries  # compaction may have swapped the list
        return entries[0][0] if entries else None

    # ----------------------------------------------------- dead accounting
    def note_cancelled(self) -> None:
        # Called once per cancel — MAC state machines cancel constantly —
        # so the compaction test is inlined rather than a call away.
        self.live -= 1
        self._dead += 1
        entries = self._entries
        if len(entries) > COMPACT_MIN_SIZE and self.live < len(entries) // 2:
            self._maybe_compact()

    def _note_purged(self, head: EventHandle) -> None:
        """A dead entry left through the head; keep pressure consistent."""
        self._dead -= 1
        if head._pooled:
            self._recycle(head)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        entries = self._entries
        if len(entries) > COMPACT_MIN_SIZE and self.live < len(entries) // 2:
            # Rebuild with pending entries only.  Ordering is unaffected:
            # entries keep their (time, priority, seq) keys.
            pool = self.pool
            if pool is not None:
                for entry in entries:
                    head = entry[3]
                    if head._cancelled and head._pooled:
                        self._recycle(head)
            self._entries = [entry for entry in entries if entry[3].pending]
            heapify(self._entries)
            self._dead = 0

    def __len__(self) -> int:
        return len(self._entries)

    def live_entries(self) -> List[QueueEntry]:
        # Same liveness test as _maybe_compact; sorting a heap list is
        # cheap and leaves the heap invariant untouched (new list).
        return sorted(entry for entry in self._entries if entry[3].pending)
