"""Discrete-event simulation kernel.

The kernel is deliberately small: a pluggable event queue with
deterministic tie-breaking (:class:`~repro.sim.kernel.Simulator`; backends
in :mod:`repro.sim.queues` — the default binary heap and a calendar-queue
timer wheel, byte-identical in firing order), cancellable
event handles (:class:`~repro.sim.events.EventHandle`), restartable timers
(:class:`~repro.sim.timers.Timer`), named seeded random streams
(:class:`~repro.sim.rng.RandomStreams`), and an event trace recorder
(:class:`~repro.sim.trace.Trace`).

The paper's simulations are event-driven at packet granularity; everything in
this package exists to support that style: schedule a callback at an absolute
or relative simulated time, cancel it if the protocol state machine moves on,
and keep runs reproducible under a single seed.
"""

from repro.sim.events import EventHandle
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timers import Timer
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "RandomStreams",
    "Timer",
    "Trace",
    "TraceRecord",
]
