"""The discrete-event simulator.

A :class:`Simulator` owns the virtual clock and the pending-event heap.
Model code schedules callbacks with :meth:`Simulator.schedule` (relative
delay) or :meth:`Simulator.at` (absolute time) and drives the run with
:meth:`Simulator.run`.  The kernel guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in scheduling order;
* a cancelled event never fires;
* the clock never moves backwards.

The heap holds ``(time, priority, seq, handle)`` tuples so that sift
comparisons are C-level tuple comparisons (``seq`` is unique, so the
handle itself is never compared).  Cancelled events are dropped lazily
when popped; a live-event counter — maintained in O(1) on schedule, fire
and cancel — both answers :meth:`Simulator.pending_count` without walking
the heap and triggers a compaction sweep when cancelled entries dominate
the queue, which keeps long timer-heavy runs from dragging dead weight
through every sift.

The paper's simulator (§3) is event-driven at packet granularity; runs of
500–2000 simulated seconds at 256 kbps produce on the order of 10^5–10^6
events, which this pure-Python heap handles comfortably.

Observability hooks into the kernel through a single *passive clock
observer* (:meth:`Simulator.attach_observer`): a callback invoked with the
time the clock is about to advance to, *before* the event at that instant
fires.  Because the observer schedules nothing and fires nothing, it is
invisible to the event stream — ``events_fired`` and trace digests are
byte-identical with or without one attached, which is the determinism
contract :mod:`repro.obs` relies on.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import EventHandle
from repro.sim.rng import RandomStreams
from repro.sim.trace import Trace

#: Compact the heap when it holds more than this many entries and fewer
#: than half of them are live.  Small enough to bound memory on cancel-heavy
#: workloads, large enough that compaction never shows up on short runs.
_COMPACT_MIN_SIZE = 512

_HeapEntry = Tuple[float, int, int, EventHandle]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, bad run bounds)."""


class Simulator:
    """Event-driven simulation core with a seeded random-stream registry.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RandomStreams`.  Every source
        of randomness in a run (per-station protocol jitter, traffic, noise)
        derives an independent child stream from this seed, so a single
        integer reproduces an entire experiment.
    trace:
        Optional :class:`~repro.sim.trace.Trace` used by model components to
        record protocol events for post-run analysis.
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None) -> None:
        self._now = 0.0
        self._heap: List[_HeapEntry] = []
        self._live = 0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: Number of events fired so far (useful for benchmarks and debugging).
        self.events_fired = 0
        #: Passive clock observer (see :meth:`attach_observer`); None when
        #: observability is off, which keeps the run loop at a single
        #: ``is not None`` test per fired event.
        self._observer: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------- observing
    def attach_observer(self, observer: Callable[[float], None]) -> None:
        """Register a passive clock observer.

        ``observer(next_time)`` is called whenever the clock is about to
        advance — immediately before the first event at ``next_time`` fires,
        and once more with the ``until`` horizon when :meth:`run` pads the
        clock out to it.  The callback therefore sees the simulation state
        "at ``next_time`` minus epsilon", which is exactly what a periodic
        sampler wants.

        The observer MUST be passive: it must not schedule or cancel
        events, write trace records, or draw from the random streams.
        Violating this breaks the determinism contract (identical
        ``events_fired`` and trace digests with the observer on or off).
        Only one observer may be attached at a time.
        """
        if self._observer is not None:
            raise SimulationError("a clock observer is already attached")
        self._observer = observer

    def detach_observer(self, observer: Callable[[float], None]) -> None:
        """Detach ``observer`` if it is the one currently attached.

        Compared with ``==`` rather than ``is``: each attribute access on
        a bound method builds a fresh object, so ``sim.detach_observer(
        self._on_advance)`` must still match the one attached earlier.
        """
        if self._observer == observer:
            self._observer = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ scheduling
    def at(self, time: float, callback: Callable[..., Any], *args: Any,
           priority: int = 0) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        ``priority`` breaks same-instant ties: lower fires first (frame-end
        deliveries use -1 so defer state is current at slot boundaries).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, clock already at {self._now:.9f}"
            )
        handle = EventHandle(time, callback, args, priority=priority, owner=self)
        heappush(self._heap, (time, priority, handle.seq, handle))
        self._live += 1
        return handle

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant.

        The callback runs after every event already scheduled for ``now``,
        preserving causal ordering within a single instant.
        """
        return self.at(self._now, callback, *args)

    # ------------------------------------------------------- live bookkeeping
    def _note_cancelled(self) -> None:
        """An event created by this simulator was cancelled (EventHandle)."""
        self._live -= 1
        heap = self._heap
        if len(heap) > _COMPACT_MIN_SIZE and self._live < len(heap) // 2:
            # Rebuild with pending entries only.  Ordering is unaffected:
            # entries keep their (time, priority, seq) keys.
            self._heap = [entry for entry in heap if entry[3].pending]
            heapify(self._heap)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        """Fire events until the horizon (or queue exhaustion) and return
        the final clock value.

        With ``until`` given, the clock is advanced to exactly ``until`` even
        if the queue drains earlier, so back-to-back ``run`` calls behave
        like one long run.  Events scheduled at exactly ``until`` DO fire
        (the horizon is inclusive), which lets experiments observe state at
        clean boundaries.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run until t={until:.9f} is in the past (now={self._now:.9f})"
            )
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        observer = self._observer
        try:
            # Entries are pushed exactly once and popped before firing, so a
            # queued handle can only be pending or cancelled — reading the
            # _cancelled slot directly skips a property call per event.
            while heap and not self._stopped:
                entry = heap[0]
                head = entry[3]
                if head._cancelled:
                    pop(heap)
                    continue
                if until is not None and entry[0] > until:
                    break
                if observer is not None and entry[0] > self._now:
                    observer(entry[0])
                pop(heap)
                self._now = entry[0]
                self._live -= 1
                head._fire()
                self.events_fired += 1
                heap = self._heap  # compaction may have swapped the list
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            if observer is not None:
                observer(until)
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False when none remain."""
        while self._heap:
            head = heappop(self._heap)[3]
            if head._cancelled:
                continue
            if self._observer is not None and head.time > self._now:
                self._observer(head.time)
            self._now = head.time
            self._live -= 1
            head._fire()
            self.events_fired += 1
            return True
        return False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        while self._heap and self._heap[0][3]._cancelled:
            heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_count()},"
            f" fired={self.events_fired})"
        )
