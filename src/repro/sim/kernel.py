"""The discrete-event simulator.

A :class:`Simulator` owns the virtual clock and a pluggable pending-event
queue.  Model code schedules callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.at` (absolute time) and drives the
run with :meth:`Simulator.run`.  The kernel guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in scheduling order;
* a cancelled event never fires;
* the clock never moves backwards.

*Which data structure holds the pending events* is an
:class:`~repro.sim.queues.EventQueue` backend (``queue=`` — ``"heap"``,
the binary tuple heap and default, or ``"wheel"``, a calendar queue with
O(1) amortized schedule/cancel built for MACAW's cancel-dominated timer
workload; the ``REPRO_QUEUE`` environment variable sets the ambient
default).  Every backend delivers events in identical
``(time, priority, seq)`` order, so ``events_fired`` and trace digests
are byte-identical per seed regardless of backend.  Cancelled events are
skipped lazily; each backend keeps a live-event counter — O(1) on
schedule, fire and cancel — that both answers
:meth:`Simulator.pending_count` without walking the structure and
triggers a compaction sweep when dead entries dominate, from *any* pop
path (``run``, ``step`` and ``peek`` share the accounting).

Two allocation fast paths sit on top: handles created with
``pooled=True`` (the promise that the creator never touches a handle
after it fires or is cancelled — :class:`repro.sim.timers.Timer` does
this) are recycled through a per-simulator free list, and
:meth:`Simulator.reschedule` rearms a pending event in place when the
backend supports it, sparing the cancel-then-push dance entirely.

The paper's simulator (§3) is event-driven at packet granularity; runs of
500–2000 simulated seconds at 256 kbps produce on the order of 10^5–10^6
events, which this pure-Python kernel handles comfortably.

Observability hooks into the kernel through a single *passive clock
observer* (:meth:`Simulator.attach_observer`): a callback invoked with the
time the clock is about to advance to, *before* the event at that instant
fires.  Because the observer schedules nothing and fires nothing, it is
invisible to the event stream — ``events_fired`` and trace digests are
byte-identical with or without one attached, which is the determinism
contract :mod:`repro.obs` relies on.  The observer slot is re-read every
iteration, so an observer attached or detached by a fired event takes
effect at the very next clock advance.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.events import EventHandle, next_seq
from repro.sim.queues import POOL_MAX, EventQueue, make_queue
from repro.sim.rng import RandomStreams
from repro.sim.trace import Trace


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, bad run bounds)."""


class Simulator:
    """Event-driven simulation core with a seeded random-stream registry.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.rng.RandomStreams`.  Every source
        of randomness in a run (per-station protocol jitter, traffic, noise)
        derives an independent child stream from this seed, so a single
        integer reproduces an entire experiment.
    trace:
        Optional :class:`~repro.sim.trace.Trace` used by model components to
        record protocol events for post-run analysis.
    queue:
        Event-queue backend spec (``"heap"``, ``"wheel"``,
        ``"wheel:WIDTH"``); None adopts ``$REPRO_QUEUE`` or the heap.
        Purely a performance knob — results are byte-identical.
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None,
                 queue: Optional[str] = None) -> None:
        self._now = 0.0
        self._queue: EventQueue = make_queue(queue)
        self._free: List[EventHandle] = []
        self._queue.pool = self._free
        # Hot-path aliases: one attribute hop instead of two per event.
        # ``_note_cancelled`` is what EventHandle.cancel() calls on its
        # owner — bound straight to the backend's accounting method.
        self._push = self._queue.push
        self._pop = self._queue.pop_next
        self._note_cancelled = self._queue.note_cancelled
        #: True when the backend rearms pending events in place (the
        #: wheel); rearm-heavy callers check this before bothering
        #: :meth:`reschedule` (the heap would only say no).
        self.can_reschedule: bool = self._queue.supports_reschedule
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: Number of events fired so far (useful for benchmarks and debugging).
        self.events_fired = 0
        #: Passive clock observer (see :meth:`attach_observer`); None when
        #: observability is off, which keeps the run loop at a single
        #: ``is not None`` test per fired event.
        self._observer: Optional[Callable[[float], None]] = None

    @property
    def queue_name(self) -> str:
        """Registry name of the active event-queue backend."""
        return self._queue.name

    # ------------------------------------------------------------- observing
    def attach_observer(self, observer: Callable[[float], None]) -> None:
        """Register a passive clock observer.

        ``observer(next_time)`` is called whenever the clock is about to
        advance — immediately before the first event at ``next_time`` fires,
        and once more with the ``until`` horizon when :meth:`run` pads the
        clock out to it.  The callback therefore sees the simulation state
        "at ``next_time`` minus epsilon", which is exactly what a periodic
        sampler wants.

        The observer MUST be passive: it must not schedule or cancel
        events, write trace records, or draw from the random streams.
        Violating this breaks the determinism contract (identical
        ``events_fired`` and trace digests with the observer on or off).
        Only one observer may be attached at a time.  Attaching from
        inside a fired event is allowed: the slot is consulted afresh at
        every clock advance.
        """
        if self._observer is not None:
            raise SimulationError("a clock observer is already attached")
        self._observer = observer

    def detach_observer(self, observer: Callable[[float], None]) -> None:
        """Detach ``observer`` if it is the one currently attached.

        Compared with ``==`` rather than ``is``: each attribute access on
        a bound method builds a fresh object, so ``sim.detach_observer(
        self._on_advance)`` must still match the one attached earlier.
        """
        if self._observer == observer:
            self._observer = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ scheduling
    def at(self, time: float, callback: Callable[..., Any], *args: Any,
           priority: int = 0, pooled: bool = False) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        ``priority`` breaks same-instant ties: lower fires first (frame-end
        deliveries use -1 so defer state is current at slot boundaries).
        ``pooled`` lets the kernel recycle the handle after it fires or
        its cancellation is collected — pass it only when no reference to
        the handle outlives those moments (:class:`~repro.sim.timers
        .Timer` qualifies; most model code should leave it off).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, clock already at {self._now:.9f}"
            )
        free = self._free
        if pooled and free:
            handle = free.pop()
            handle._reinit(time, callback, args, priority, self)
        else:
            handle = EventHandle(time, callback, args, priority=priority,
                                 owner=self, pooled=pooled)
        self._push(time, priority, handle.seq, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any,
                 pooled: bool = False) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        The hottest scheduling entry point in MAC-heavy runs, so the
        :meth:`at` body is inlined (a non-negative delay from ``now`` can
        never land in the past — no clock check needed).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        free = self._free
        if pooled and free:
            handle = free.pop()
            handle._reinit(time, callback, args, 0, self)
        else:
            handle = EventHandle(time, callback, args, owner=self,
                                 pooled=pooled)
        self._push(time, 0, handle.seq, handle)
        return handle

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant.

        The callback runs after every event already scheduled for ``now``,
        preserving causal ordering within a single instant.
        """
        return self.at(self._now, callback, *args)

    def reschedule(self, handle: EventHandle, time: float,
                   priority: int = 0) -> bool:
        """Move a pending event to ``time`` in place, if the backend can.

        Returns True when the backend rearmed the live handle (the wheel:
        O(1), no new allocation) and False when it cannot (the heap) —
        the caller then falls back to ``cancel()`` + a fresh schedule.
        Either way the event is assigned a fresh sequence number, so
        same-instant firing order is byte-identical to the fallback path.
        """
        if handle.owner is not self or not handle.pending:
            raise SimulationError(
                "reschedule() needs a pending event owned by this simulator"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot reschedule to t={time:.9f}, clock already at "
                f"{self._now:.9f}"
            )
        queue = self._queue
        if not queue.supports_reschedule:
            return False
        # The backend stamps the handle's new (time, priority, seq) itself,
        # *before* its internal compaction can observe the old/new entry
        # pair — assigning here afterwards would leave a window where the
        # handle still named the stale entry (see EventQueue.reschedule).
        queue.reschedule(handle, time, priority, next_seq())
        return True

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        """Fire events until the horizon (or queue exhaustion) and return
        the final clock value.

        With ``until`` given, the clock is advanced to exactly ``until`` even
        if the queue drains earlier, so back-to-back ``run`` calls behave
        like one long run.  Events scheduled at exactly ``until`` DO fire
        (the horizon is inclusive), which lets experiments observe state at
        clean boundaries.

        ``events_fired`` is committed when ``run`` returns; a callback
        reading it mid-run sees the pre-run value (and :meth:`step` is
        rejected inside a run for the same reason).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run until t={until:.9f} is in the past (now={self._now:.9f})"
            )
        self._running = True
        self._stopped = False
        pop_next = self._pop
        free = self._free
        # The counter accumulates in a local and lands back on the attribute
        # in the finally block — ``events_fired`` read from inside a callback
        # is the pre-run value until the run returns, and ``step()`` refuses
        # to run re-entrantly so its direct increment can never be clobbered
        # by the write-back.  (The loop body below is
        # :meth:`EventHandle._fire` inlined — pop_next already filtered
        # cancelled entries, so its liveness guard would be dead weight.)
        fired = self.events_fired
        try:
            while not self._stopped:
                head = pop_next(until)
                if head is None:
                    break
                time = head.time
                # Re-read per iteration: a fired event may attach/detach.
                observer = self._observer
                if observer is not None and time > self._now:
                    observer(time)
                self._now = time
                head._fired = True
                callback = head.callback
                args = head.args
                head.callback = None
                head.args = ()
                head.owner = None
                callback(*args)  # type: ignore[misc]
                fired += 1
                if head._pooled and len(free) < POOL_MAX:
                    free.append(head)
        finally:
            self.events_fired = fired
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            observer = self._observer
            if observer is not None:
                observer(until)
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False when none remain.

        Not callable from inside :meth:`run`: the run loop batches its
        ``events_fired`` updates, so a re-entrant step's increment would
        be silently clobbered when the loop writes the counter back.
        """
        if self._running:
            raise SimulationError("step() cannot be called from inside run()")
        head = self._pop(None)
        if head is None:
            return False
        observer = self._observer
        if observer is not None and head.time > self._now:
            observer(head.time)
        self._now = head.time
        head._fire()
        self.events_fired += 1
        if head._pooled and len(self._free) < POOL_MAX:
            self._free.append(head)
        return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        return self._queue.peek_time()

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._queue.live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_count()},"
            f" fired={self.events_fired}, queue={self.queue_name!r})"
        )
