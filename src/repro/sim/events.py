"""Cancellable event handles for the simulation kernel.

An :class:`EventHandle` is returned by :meth:`repro.sim.kernel.Simulator.at`
and :meth:`repro.sim.kernel.Simulator.schedule`.  Cancellation is lazy: the
queue entry stays in place but is skipped when it surfaces.  This keeps both
scheduling and cancellation O(log n) / O(1) and avoids the cost of queue
surgery, which matters because MAC state machines cancel timers constantly.

The queue backends store ``(time, priority, seq, handle)`` tuples rather
than the handles themselves, so sift comparisons run on C-level tuples;
:meth:`EventHandle.__lt__` is kept only for code that orders handles
directly.  ``seq`` doubles as a staleness stamp: a backend with in-place
reschedule gives the handle a fresh ``seq`` (via :func:`next_seq`) and the
entry carrying the old one is dead where it lies.

**Pooling.**  Handles are the dominant allocation in long runs — every
frame arms or rearms a timeout.  A creator that promises never to touch a
handle after it fires or is cancelled (in tree: :class:`repro.sim.timers
.Timer`, which owns its handle exclusively) passes ``pooled=True``; the
kernel then recycles the object through a per-simulator free list,
re-initializing it with :meth:`EventHandle._reinit` instead of paying an
allocation.  Pooling never changes ``seq`` consumption or firing order —
it is invisible to ``events_fired`` and trace digests.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Optional, Tuple

#: Monotonic tie-break counter shared by all simulators in the process.  Two
#: events scheduled for the same instant fire in scheduling order, which makes
#: runs reproducible regardless of queue internals.
_sequence: Iterator[int] = itertools.count()


def next_seq() -> int:
    """Draw the next global sequence number (kernel use: reschedule)."""
    return next(_sequence)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are ordered by ``(time, priority, seq)`` so they can live
    directly in a heap.  Lower priority values fire first at the same
    instant; the default is 0.  The physical layer schedules frame-end
    deliveries at priority -1 so that a station processes "I just heard the
    end of that RTS" *before* "my contention slot boundary arrived" when the
    two coincide — a real radio's defer check sees the finished frame.

    ``owner`` (set by the kernel) is notified on :meth:`cancel` so the
    simulator can maintain its live-event count in O(1).  ``_pooled``
    marks a handle whose creator allows the kernel to recycle it after it
    fires or its cancelled entry is purged (see module docstring).
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "owner",
        "_cancelled", "_fired", "_pooled",
    )

    time: float
    priority: int
    seq: int
    callback: Optional[Callable[..., Any]]
    args: Tuple[Any, ...]
    owner: Optional[Any]
    _cancelled: bool
    _fired: bool
    _pooled: bool

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        owner: Optional[Any] = None,
        pooled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_sequence)
        self.callback = callback
        self.args = args
        self.owner = owner
        self._cancelled = False
        self._fired = False
        self._pooled = pooled

    def _reinit(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        priority: int,
        owner: Optional[Any],
    ) -> None:
        """Reset a recycled handle as if freshly constructed (kernel only).

        Draws a new ``seq``, so any stale queue entries still naming the
        old one stay dead.  Only the kernel's free list calls this, and
        only for handles whose single live queue placement was removed.
        """
        self.time = time
        self.priority = priority
        self.seq = next(_sequence)
        self.callback = callback
        self.args = args
        self.owner = owner
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the kernel has invoked the callback."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still due to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Prevent the callback from running.

        Returns True when the event was still pending, False when it had
        already fired or been cancelled (cancelling twice is harmless).
        """
        if self._cancelled or self._fired:
            return False
        self._cancelled = True
        # Break reference cycles early; the queue entry lingers until purged.
        self.callback = None
        self.args = ()
        owner = self.owner
        if owner is not None:
            self.owner = None
            owner._note_cancelled()
        return True

    def _fire(self) -> None:
        """Invoke the callback.  Called by the kernel only."""
        if self._cancelled:
            return
        self._fired = True
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        self.owner = None
        assert callback is not None
        callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"
