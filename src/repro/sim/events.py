"""Cancellable event handles for the simulation kernel.

An :class:`EventHandle` is returned by :meth:`repro.sim.kernel.Simulator.at`
and :meth:`repro.sim.kernel.Simulator.schedule`.  Cancellation is lazy: the
heap entry stays in the queue but is skipped when popped.  This keeps both
scheduling and cancellation O(log n) / O(1) and avoids the cost of heap
surgery, which matters because MAC state machines cancel timers constantly.

The kernel stores ``(time, priority, seq, handle)`` tuples in its heap
rather than the handles themselves, so sift comparisons run on C-level
tuples; :meth:`EventHandle.__lt__` is kept only for code that orders
handles directly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Optional, Tuple

#: Monotonic tie-break counter shared by all simulators in the process.  Two
#: events scheduled for the same instant fire in scheduling order, which makes
#: runs reproducible regardless of heap internals.
_sequence: Iterator[int] = itertools.count()


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are ordered by ``(time, priority, seq)`` so they can live
    directly in a heap.  Lower priority values fire first at the same
    instant; the default is 0.  The physical layer schedules frame-end
    deliveries at priority -1 so that a station processes "I just heard the
    end of that RTS" *before* "my contention slot boundary arrived" when the
    two coincide — a real radio's defer check sees the finished frame.

    ``owner`` (set by the kernel) is notified on :meth:`cancel` so the
    simulator can maintain its live-event count in O(1).
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "owner",
        "_cancelled", "_fired",
    )

    time: float
    priority: int
    seq: int
    callback: Optional[Callable[..., Any]]
    args: Tuple[Any, ...]
    owner: Optional[Any]
    _cancelled: bool
    _fired: bool

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        owner: Optional[Any] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_sequence)
        self.callback = callback
        self.args = args
        self.owner = owner
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the kernel has invoked the callback."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still due to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Prevent the callback from running.

        Returns True when the event was still pending, False when it had
        already fired or been cancelled (cancelling twice is harmless).
        """
        if self._cancelled or self._fired:
            return False
        self._cancelled = True
        # Break reference cycles early; the heap entry lingers until popped.
        self.callback = None
        self.args = ()
        owner = self.owner
        if owner is not None:
            self.owner = None
            owner._note_cancelled()
        return True

    def _fire(self) -> None:
        """Invoke the callback.  Called by the kernel only."""
        if self._cancelled:
            return
        self._fired = True
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        self.owner = None
        assert callback is not None
        callback(*args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"
