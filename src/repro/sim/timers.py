"""Restartable one-shot timers built on kernel events.

MAC state machines set, clear and re-arm timeouts on almost every frame.
:class:`Timer` wraps the schedule/cancel dance so a state machine can say
``self.timer.start(delay)`` / ``self.timer.stop()`` without tracking raw
event handles, and so a stale callback can never fire after a restart.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import EventHandle
from repro.sim.kernel import Simulator


class Timer:
    """A one-shot timer whose callback fires unless stopped or restarted.

    Restarting implicitly cancels the previous arming, so at most one expiry
    is ever outstanding.  The callback receives no arguments; bind context
    when constructing the timer.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self.name = name
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        """True while an expiry is pending."""
        return self._handle is not None and self._handle.pending

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when not running."""
        if self.running:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.stop()
        self._handle = self._sim.schedule(delay, self._expire)

    def start_at(self, time: float) -> None:
        """Arm (or re-arm) the timer at absolute ``time``."""
        self.stop()
        self._handle = self._sim.at(time, self._expire)

    def extend_to(self, time: float) -> None:
        """Push the expiry out to ``time`` if that is later than current.

        Arms the timer when idle.  Used by defer bookkeeping: overheard
        control packets may lengthen, but never shorten, a quiet period
        (Appendix B control rule 11).
        """
        current = self.expires_at
        if current is None or time > current:
            self.start_at(max(time, self._sim.now))

    def stop(self) -> bool:
        """Disarm the timer.  Returns True when an expiry was pending."""
        if self._handle is not None and self._handle.pending:
            self._handle.cancel()
            self._handle = None
            return True
        self._handle = None
        return False

    def _expire(self) -> None:
        self._handle = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.running:
            return f"Timer({self.name!r}, expires_at={self.expires_at:.6f})"
        return f"Timer({self.name!r}, idle)"
