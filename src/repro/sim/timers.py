"""Restartable one-shot timers built on kernel events.

MAC state machines set, clear and re-arm timeouts on almost every frame.
:class:`Timer` wraps the schedule/cancel dance so a state machine can say
``self.timer.start(delay)`` / ``self.timer.stop()`` without tracking raw
event handles, and so a stale callback can never fire after a restart.

Because a Timer owns its handle exclusively — it drops the reference the
moment the event fires or is stopped — it opts into both kernel
allocation fast paths: its handles are *pooled* (recycled through the
simulator's free list instead of reallocated), and a restart while armed
goes through :meth:`~repro.sim.kernel.Simulator.reschedule`, which on a
backend with in-place rearm (the wheel) moves the live handle in O(1)
with no cancel, no new entry surgery and no allocation at all.  On the
heap backend ``reschedule`` declines and the classic cancel-then-schedule
path runs instead; either way the event stream is byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import EventHandle
from repro.sim.kernel import SimulationError, Simulator


class Timer:
    """A one-shot timer whose callback fires unless stopped or restarted.

    Restarting implicitly cancels the previous arming, so at most one expiry
    is ever outstanding.  The callback receives no arguments; bind context
    when constructing the timer.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self.name = name
        self._handle: Optional[EventHandle] = None
        # Snapshot: the backend never changes under a live simulator, and
        # skipping the doomed reschedule() call on the heap keeps the
        # rearm path as cheap as it was before backends were pluggable.
        self._can_resched = sim.can_reschedule

    @property
    def running(self) -> bool:
        """True while an expiry is pending."""
        handle = self._handle
        return handle is not None and not (handle._cancelled or handle._fired)

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when not running."""
        handle = self._handle
        if handle is not None and not (handle._cancelled or handle._fired):
            return handle.time
        return None

    def _arm(self, time: float) -> None:
        """(Re-)arm at absolute ``time``, reusing the live handle if possible.

        Runs on nearly every frame, so the handle's liveness slots are read
        directly instead of through the ``pending`` property.
        """
        handle = self._handle
        if handle is not None and not (handle._cancelled or handle._fired):
            if self._can_resched and self._sim.reschedule(handle, time):
                return
            handle.cancel()
        self._handle = self._sim.at(time, self._expire, pooled=True)

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._arm(self._sim.now + delay)

    def start_at(self, time: float) -> None:
        """Arm (or re-arm) the timer at absolute ``time``."""
        self._arm(time)

    def extend_to(self, time: float) -> None:
        """Push the expiry out to ``time`` if that is later than current.

        Arms the timer when idle.  Used by defer bookkeeping: overheard
        control packets may lengthen, but never shorten, a quiet period
        (Appendix B control rule 11).
        """
        handle = self._handle
        if handle is not None and not (handle._cancelled or handle._fired):
            # A pending expiry never lies in the past, so ``time`` being
            # later than it is already at-or-after ``now`` — no clamp.
            if time > handle.time:
                self._arm(time)
            return
        now = self._sim.now
        self._arm(time if time > now else now)

    def stop(self) -> bool:
        """Disarm the timer.  Returns True when an expiry was pending."""
        handle = self._handle
        self._handle = None
        if handle is not None and not (handle._cancelled or handle._fired):
            handle.cancel()
            return True
        return False

    def _expire(self) -> None:
        # Dropping the reference BEFORE the callback is what makes pooling
        # safe: by the time the kernel recycles the fired handle, no Timer
        # attribute can still name it.
        self._handle = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.running:
            return f"Timer({self.name!r}, expires_at={self.expires_at:.6f})"
        return f"Timer({self.name!r}, idle)"
