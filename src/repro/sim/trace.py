"""Lightweight protocol event tracing.

A :class:`Trace` collects timestamped records emitted by model components
(frame sent, frame received, collision, state change, packet drop...).
Traces power the debugging workflow and a few tests that assert on protocol
event sequences; they are disabled by default because recording every event
of a 2000-second run is expensive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    category: str
    station: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def matches(self, category: Optional[str] = None, station: Optional[str] = None) -> bool:
        """Filter predicate used by :meth:`Trace.select`."""
        if category is not None and self.category != category:
            return False
        if station is not None and self.station != station:
            return False
        return True


class Trace:
    """Append-only record store with simple filtering.

    ``enabled=False`` turns :meth:`record` into a no-op so the hot path pays
    only one attribute check.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        #: Count of records dropped after hitting ``capacity``.
        self.dropped = 0

    def record(self, time: float, category: str, station: str, **detail: Any) -> None:
        """Append a record (no-op when disabled; drops when at capacity)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(TraceRecord(time, category, station, detail))

    def select(
        self, category: Optional[str] = None, station: Optional[str] = None
    ) -> List[TraceRecord]:
        """Records matching the given filters, in time order."""
        return [r for r in self._records if r.matches(category, station)]

    def counts(self) -> Dict[Tuple[str, str], int]:
        """Histogram of records keyed by ``(category, station)``."""
        out: Dict[Tuple[str, str], int] = {}
        for r in self._records:
            key = (r.category, r.station)
            out[key] = out.get(key, 0) + 1  # repro-lint: allow=REPRO107 (post-hoc histogram)
        return out

    def clear(self) -> None:
        """Discard all records (keeps the enabled flag)."""
        self._records.clear()
        self.dropped = 0

    def digest(self) -> str:
        """SHA-256 over a canonical rendering of every record.

        Two runs of the same scenario under the same seed must produce
        byte-identical digests — the determinism regression tests compare
        exactly this.  Detail dicts are serialized with sorted keys and
        ``repr`` values, so insertion order cannot leak into the digest.
        """
        hasher = hashlib.sha256()
        for record in self._records:
            detail = ",".join(
                f"{key}={record.detail[key]!r}" for key in sorted(record.detail)
            )
            line = f"{record.time!r}|{record.category}|{record.station}|{detail}\n"
            hasher.update(line.encode("utf-8"))
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
