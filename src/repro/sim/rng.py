"""Named, independently-seeded random streams.

A simulation mixes several kinds of randomness: contention-slot draws at each
station, traffic inter-arrival jitter, per-packet noise.  Drawing them all
from one generator makes results fragile — adding one station perturbs every
other station's sequence.  :class:`RandomStreams` derives an independent
``numpy`` generator per name from a single master seed, so component A's
draws never depend on how often component B draws.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Registry of named :class:`numpy.random.Generator` instances.

    Stream seeds are derived as ``(master_seed, crc32(name))`` through
    :class:`numpy.random.SeedSequence`, so the same ``(seed, name)`` pair
    always yields the same sequence regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._keys: Dict[int, str] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        Raises :class:`ValueError` when ``crc32(name)`` collides with a
        previously created stream of a *different* name: the two would
        silently share one seed sequence, so every draw on one would be
        correlated with the other — the opposite of the independence
        this class exists to provide.
        """
        stream = self._streams.get(name)
        if stream is None:
            key = zlib.crc32(name.encode("utf-8"))
            owner = self._keys.get(key)
            if owner is not None and owner != name:
                raise ValueError(
                    f"stream name {name!r} collides with existing stream "
                    f"{owner!r} under crc32 (key {key}); the two would share "
                    f"one generator seed — rename one of them"
                )
            sequence = np.random.SeedSequence(entropy=(self.seed, key))
            stream = np.random.default_rng(sequence)
            self._streams[name] = stream
            self._keys[key] = name
        return stream

    def uniform_slots(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` — the paper's slot draw."""
        if high < low:
            high = low
        return int(self.get(name).integers(low, high + 1))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
