"""MACAW reproduction: packet-level wireless MAC simulation.

A from-scratch reproduction of *MACAW: A Media Access Protocol for Wireless
LAN's* (Bharghavan, Demers, Shenker, Zhang — SIGCOMM 1994): the
discrete-event simulator, the PARC nano-cellular radio model, the CSMA and
MACA baselines, the MACAW protocol with all of the paper's amendments, the
UDP/TCP substrates, and experiment drivers that regenerate every table.

Quick start::

    from repro import ScenarioBuilder

    builder = ScenarioBuilder(seed=1, protocol="macaw")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", rate_pps=64)
    builder.udp("P2", "B", rate_pps=64)
    scenario = builder.build().run(200)
    print(scenario.throughputs(warmup=50))
"""

from repro.sim import Simulator
from repro.phy import GraphMedium, GridMedium, PacketErrorModel, NoiseSource
from repro.mac import CsmaMac, CsmaConfig, FrameType, MacTiming
from repro.mac.maca import MacaMac
from repro.core import MacawMac, ProtocolConfig
from repro.core.config import (
    MACA_CONFIG,
    MACAW_CONFIG,
    RunProfile,
    active_profile,
    maca_config,
    macaw_config,
)
from repro.fault import FaultSchedule
from repro.net import UdpStream, TcpStream, TcpConfig, FlowRecorder
from repro.topo import Scenario, ScenarioBuilder, Station

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "GraphMedium",
    "GridMedium",
    "PacketErrorModel",
    "NoiseSource",
    "CsmaMac",
    "CsmaConfig",
    "FrameType",
    "MacTiming",
    "MacaMac",
    "MacawMac",
    "ProtocolConfig",
    "MACA_CONFIG",
    "MACAW_CONFIG",
    "maca_config",
    "macaw_config",
    "RunProfile",
    "active_profile",
    "FaultSchedule",
    "UdpStream",
    "TcpStream",
    "TcpConfig",
    "FlowRecorder",
    "Scenario",
    "ScenarioBuilder",
    "Station",
    "__version__",
]
