"""Benchmarks: the ablation studies beyond the paper's tables."""

from conftest import run_experiment_bench


def test_ablation_mild_factor(benchmark):
    run_experiment_bench(benchmark, "ablation-mild-factor")


def test_ablation_rts_defer(benchmark):
    run_experiment_bench(benchmark, "ablation-rts-defer")


def test_ablation_copying(benchmark):
    run_experiment_bench(benchmark, "ablation-copying")


def test_ablation_multicast(benchmark):
    run_experiment_bench(benchmark, "ablation-multicast")


def test_ablation_failure_detection(benchmark):
    run_experiment_bench(benchmark, "ablation-failure-detection")


def test_ablation_ack_variants(benchmark):
    run_experiment_bench(benchmark, "ablation-ack-variants")


def test_ablation_carrier_sense(benchmark):
    run_experiment_bench(benchmark, "ablation-carrier-sense")


def test_ablation_polling(benchmark):
    run_experiment_bench(benchmark, "ablation-polling")
