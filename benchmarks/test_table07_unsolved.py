"""Benchmark: regenerate the paper's Table 7."""

from conftest import run_experiment_bench


def test_table7(benchmark):
    run_experiment_bench(benchmark, "table7")
