"""Benchmark: Figure 8's backoff leakage between unequally congested cells."""

from conftest import run_experiment_bench


def test_fig8(benchmark):
    run_experiment_bench(benchmark, "fig8")
