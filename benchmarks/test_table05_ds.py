"""Benchmark: regenerate the paper's Table 5."""

from conftest import run_experiment_bench


def test_table5(benchmark):
    run_experiment_bench(benchmark, "table5")
