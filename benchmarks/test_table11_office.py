"""Benchmark: regenerate the paper's Table 11."""

from conftest import run_experiment_bench


def test_table11(benchmark):
    run_experiment_bench(benchmark, "table11")
