"""Benchmark: regenerate the paper's Table 4."""

from conftest import run_experiment_bench


def test_table4(benchmark):
    run_experiment_bench(benchmark, "table4")
