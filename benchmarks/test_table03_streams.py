"""Benchmark: regenerate the paper's Table 3."""

from conftest import run_experiment_bench


def test_table3(benchmark):
    run_experiment_bench(benchmark, "table3")
