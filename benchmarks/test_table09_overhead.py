"""Benchmark: regenerate the paper's Table 9."""

from conftest import run_experiment_bench


def test_table9(benchmark):
    run_experiment_bench(benchmark, "table9")
