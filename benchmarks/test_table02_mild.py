"""Benchmark: regenerate the paper's Table 2."""

from conftest import run_experiment_bench


def test_table2(benchmark):
    run_experiment_bench(benchmark, "table2")
