"""Micro-benchmarks: simulator engine throughput.

These measure the machinery itself (events per second, a saturated MACAW
cell) so performance regressions in the kernel or medium show up
independently of the reproduction benches.
"""

from repro.sim.kernel import Simulator
from repro.topo.figures import fig3_six_pads, single_stream_cell


def test_kernel_event_throughput(benchmark):
    """Schedule-and-fire cost of the bare event loop."""

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(0.001, chain, n - 1)

        chain(50_000)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 50_000


def test_single_stream_cell_speed(benchmark):
    """Packet-level cost of one saturated MACAW stream (100 s simulated)."""

    def run():
        scenario = single_stream_cell(protocol="macaw", seed=1).build().run(100.0)
        return scenario.sim.events_fired

    fired = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fired > 10_000


def test_six_pad_cell_speed(benchmark):
    """A contended six-pad MACAW cell (100 s simulated)."""

    def run():
        scenario = fig3_six_pads(protocol="macaw", seed=1).build().run(100.0)
        return scenario.sim.events_fired

    fired = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fired > 50_000
