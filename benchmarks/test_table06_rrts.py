"""Benchmark: regenerate the paper's Table 6."""

from conftest import run_experiment_bench


def test_table6(benchmark):
    run_experiment_bench(benchmark, "table6")
