"""Benchmark: regenerate the paper's Table 10."""

from conftest import run_experiment_bench


def test_table10(benchmark):
    run_experiment_bench(benchmark, "table10")
