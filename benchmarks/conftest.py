"""Benchmark harness helpers.

Every table/figure bench regenerates its experiment once (simulations are
deterministic per seed — repeated rounds would measure the same run),
prints the reproduced table next to the paper's values, and asserts the
qualitative checks.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from repro.experiments.registry import get_experiment


def run_experiment_bench(benchmark, exp_id, duration=None, seed=0):
    """Benchmark one experiment driver and print its comparison table."""
    exp = get_experiment(exp_id)
    result = benchmark.pedantic(
        lambda: exp.run(seed=seed, duration=duration), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{exp_id} qualitative checks failed: {failing}"
    return result
