"""Benchmark: regenerate the paper's Table 8."""

from conftest import run_experiment_bench


def test_table8(benchmark):
    run_experiment_bench(benchmark, "table8")
