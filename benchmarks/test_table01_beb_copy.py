"""Benchmark: regenerate the paper's Table 1."""

from conftest import run_experiment_bench


def test_table1(benchmark):
    run_experiment_bench(benchmark, "table1")
