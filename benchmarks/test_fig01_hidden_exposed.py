"""Benchmark: Figure 1's hidden/exposed terminal pathologies, CSMA vs MACA."""

from conftest import run_experiment_bench


def test_fig1(benchmark):
    run_experiment_bench(benchmark, "fig1")
